// Streaming ingest lifecycle: append → seal → snapshot. A live
// AppendableColumn — at any point of its append/seal/flush lifecycle — must
// answer select/aggregate/point-access queries bit-identically to
// compressing the same rows once with CompressChunkedAuto, and its
// serialized form must round-trip through the v2 wire format.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/catalog.h"
#include "core/chunked.h"
#include "core/serialize.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "store/appendable_column.h"
#include "store/table.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

using exec::RangePredicate;
using store::AppendableColumn;
using store::ColumnSnapshot;
using store::ColumnSpec;
using store::IngestOptions;
using store::Table;

constexpr uint64_t kChunk = 1024;

/// A drifting column: runs, then noise, then a sorted stretch.
Column<uint32_t> MixedShapes(uint64_t part, uint64_t seed) {
  Column<uint32_t> out = gen::SortedRuns(part, 40.0, 2, seed);
  Column<uint32_t> noise = gen::Uniform(part, uint64_t{1} << 24, seed + 1);
  out.insert(out.end(), noise.begin(), noise.end());
  for (uint64_t i = 0; i < part; ++i) {
    out.push_back((uint32_t{1} << 25) + static_cast<uint32_t>(3 * i));
  }
  return out;
}

/// Asserts a snapshot answers select/sum/min/max/point queries exactly like
/// the oracle: the same rows compressed once with CompressChunkedAuto.
void ExpectSnapshotMatchesOracle(const ColumnSnapshot& snap,
                                 const Column<uint32_t>& rows,
                                 const std::vector<RangePredicate>& preds) {
  ASSERT_EQ(snap.size(), rows.size());
  auto oracle = CompressChunkedAuto(AnyColumn(rows), {kChunk});
  ASSERT_OK(oracle.status());

  for (const RangePredicate& pred : preds) {
    auto live = exec::SelectCompressed(snap.chunked(), pred);
    auto ref = exec::SelectCompressed(*oracle, pred);
    ASSERT_OK(live.status());
    ASSERT_OK(ref.status());
    EXPECT_EQ(live->positions, ref->positions);
  }

  auto live_sum = exec::SumCompressed(snap.chunked());
  auto ref_sum = exec::SumCompressed(*oracle);
  ASSERT_OK(live_sum.status());
  ASSERT_OK(ref_sum.status());
  EXPECT_EQ(live_sum->value, ref_sum->value);

  if (!rows.empty()) {
    auto live_min = exec::MinCompressed(snap.chunked());
    auto ref_min = exec::MinCompressed(*oracle);
    ASSERT_OK(live_min.status());
    ASSERT_OK(ref_min.status());
    EXPECT_EQ(live_min->value, ref_min->value);

    auto live_max = exec::MaxCompressed(snap.chunked());
    auto ref_max = exec::MaxCompressed(*oracle);
    ASSERT_OK(live_max.status());
    ASSERT_OK(ref_max.status());
    EXPECT_EQ(live_max->value, ref_max->value);

    Rng rng(4242);
    std::vector<uint64_t> probe;
    for (int i = 0; i < 64; ++i) probe.push_back(rng.Below(rows.size()));
    auto live_batch = exec::GetAtBatch(snap.chunked(), probe);
    ASSERT_OK(live_batch.status());
    for (size_t i = 0; i < probe.size(); ++i) {
      EXPECT_EQ((*live_batch)[i].value, rows[probe[i]]) << probe[i];
    }
  }

  auto back = DecompressChunked(snap.chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));
}

const std::vector<RangePredicate>& Predicates() {
  static const std::vector<RangePredicate> preds = {
      {0, ~uint64_t{0}},             // Everything.
      {1u << 25, (1u << 25) + 500},  // The sorted tail.
      {5, 1u << 23},                 // Partial overlap everywhere.
      {~uint64_t{0} - 1, ~uint64_t{0}},  // Nothing.
  };
  return preds;
}

TEST(StoreTest, AppendBatchSealSnapshotLifecycle) {
  const Column<uint32_t> rows = MixedShapes(kChunk + 321, 51);
  ThreadPool pool(4);
  AppendableColumn column(TypeId::kUInt32, {kChunk}, ExecContext{&pool, 1});

  // Append in uneven batches; snapshot mid-stream after every batch.
  Column<uint32_t> appended;
  uint64_t at = 0;
  Rng rng(52);
  while (at < rows.size()) {
    const uint64_t take = std::min<uint64_t>(1 + rng.Below(700),
                                             rows.size() - at);
    Column<uint32_t> batch(rows.begin() + at, rows.begin() + at + take);
    ASSERT_OK(column.AppendBatch(AnyColumn(batch)));
    appended.insert(appended.end(), batch.begin(), batch.end());
    at += take;

    auto snap = column.Snapshot();
    ASSERT_OK(snap.status());
    ExpectSnapshotMatchesOracle(*snap, appended, Predicates());
  }

  // Mid-stream Seal(): short chunks are fine, results unchanged.
  ASSERT_OK(column.Seal());
  auto sealed_snap = column.Snapshot();
  ASSERT_OK(sealed_snap.status());
  ExpectSnapshotMatchesOracle(*sealed_snap, rows, Predicates());

  // Flush: every chunk compressed, nothing pending.
  ASSERT_OK(column.Flush());
  EXPECT_EQ(column.pending_seals(), 0u);
  EXPECT_EQ(column.sealed_chunks(), column.num_chunks());
  auto flushed = column.Snapshot();
  ASSERT_OK(flushed.status());
  EXPECT_EQ(flushed->unsealed_chunks(), 0u);
  EXPECT_EQ(flushed->sealed_chunks(), column.num_chunks());
  ExpectSnapshotMatchesOracle(*flushed, rows, Predicates());

  // The column stays appendable after a flush.
  ASSERT_OK(column.Append(7));
  EXPECT_EQ(column.size(), rows.size() + 1);
  auto point = exec::GetAt(column.Snapshot()->chunked(), rows.size());
  ASSERT_OK(point.status());
  EXPECT_EQ(point->value, 7u);
}

TEST(StoreTest, SnapshotIsImmutableWhileColumnGrows) {
  ThreadPool pool(2);
  AppendableColumn column(TypeId::kUInt32, {64}, ExecContext{&pool, 1});
  Column<uint32_t> first;
  for (uint32_t i = 0; i < 100; ++i) first.push_back(i * 3);
  ASSERT_OK(column.AppendBatch(AnyColumn(first)));

  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  ASSERT_EQ(snap->size(), 100u);

  // Grow and flush the column; the old snapshot must keep answering with
  // the rows it captured.
  for (uint32_t i = 0; i < 500; ++i) ASSERT_OK(column.Append(1000000 + i));
  ASSERT_OK(column.Flush());
  EXPECT_EQ(column.size(), 600u);

  ASSERT_EQ(snap->size(), 100u);
  auto sum = exec::SumCompressed(snap->chunked());
  ASSERT_OK(sum.status());
  uint64_t expected = 0;
  for (const uint32_t v : first) expected += v;
  EXPECT_EQ(sum->value, expected);
  auto max = exec::MaxCompressed(snap->chunked());
  ASSERT_OK(max.status());
  EXPECT_EQ(max->value, 99u * 3);
}

TEST(StoreTest, SealedColumnMatchesCompressChunkedAutoChunkForChunk) {
  // Batch appends aligned to nothing in particular, then Flush: the sealed
  // chunks must carry the same boundaries and zone maps CompressChunkedAuto
  // produces for the same chunk_rows.
  const Column<uint32_t> rows = MixedShapes(kChunk, 57);
  AppendableColumn column(TypeId::kUInt32, {kChunk});  // No pool: seal inline.
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
  ASSERT_OK(column.Flush());

  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  auto oracle = CompressChunkedAuto(AnyColumn(rows), {kChunk});
  ASSERT_OK(oracle.status());
  ASSERT_EQ(snap->chunked().num_chunks(), oracle->num_chunks());
  for (uint64_t i = 0; i < oracle->num_chunks(); ++i) {
    const CompressedChunk& live = snap->chunked().chunk(i);
    const CompressedChunk& ref = oracle->chunk(i);
    EXPECT_EQ(live.zone.row_begin, ref.zone.row_begin) << i;
    EXPECT_EQ(live.zone.row_count, ref.zone.row_count) << i;
    EXPECT_EQ(live.zone.has_minmax, ref.zone.has_minmax) << i;
    EXPECT_EQ(live.zone.min, ref.zone.min) << i;
    EXPECT_EQ(live.zone.max, ref.zone.max) << i;
    EXPECT_EQ(live.column.Descriptor(), ref.column.Descriptor()) << i;
    EXPECT_EQ(live.column.PayloadBytes(), ref.column.PayloadBytes()) << i;
  }
}

TEST(StoreTest, SerializeRoundTripsThroughV2) {
  const Column<uint32_t> rows = MixedShapes(kChunk / 2 + 77, 61);
  ThreadPool pool(2);
  const ExecContext ctx{&pool, 1};
  AppendableColumn column(TypeId::kUInt32, {kChunk / 4}, ctx);
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));

  auto buffer = column.Serialize();
  ASSERT_OK(buffer.status());
  auto restored = DeserializeChunked(*buffer, ctx);
  ASSERT_OK(restored.status());
  auto back = DecompressChunked(*restored, ctx);
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));
}

TEST(StoreTest, EmptyColumnSnapshotAndSerialize) {
  AppendableColumn column(TypeId::kUInt64, {kChunk});
  EXPECT_EQ(column.size(), 0u);
  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  EXPECT_EQ(snap->size(), 0u);
  EXPECT_EQ(snap->chunked().type(), TypeId::kUInt64);
  auto selection =
      exec::SelectCompressed(snap->chunked(), RangePredicate{0, 100});
  ASSERT_OK(selection.status());
  EXPECT_TRUE(selection->positions.empty());

  auto buffer = column.Serialize();
  ASSERT_OK(buffer.status());
  auto restored = DeserializeChunked(*buffer);
  ASSERT_OK(restored.status());
  EXPECT_EQ(restored->size(), 0u);
  EXPECT_EQ(restored->type(), TypeId::kUInt64);
}

TEST(StoreTest, FixedDescriptorPinsEverySealedChunk) {
  IngestOptions options;
  options.chunk_rows = 256;
  options.descriptor = MakeRle();
  AppendableColumn column(TypeId::kUInt32, options);
  const Column<uint32_t> rows = testutil::RunsColumn(1000, 0.05, 63);
  ASSERT_OK(column.AppendBatch(AnyColumn(rows)));
  ASSERT_OK(column.Flush());
  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  const SchemeDescriptor want = MakeRle();
  for (const auto& chunk : snap->chunked().chunks()) {
    EXPECT_EQ(chunk->column.Descriptor().kind, want.kind);
  }
  auto back = DecompressChunked(snap->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));
}

TEST(StoreTest, ErrorPaths) {
  AppendableColumn column(TypeId::kUInt8, {16});
  // Value does not fit the column type.
  EXPECT_FALSE(column.Append(300).ok());
  // Wrong append type.
  EXPECT_FALSE(column.AppendBatch(AnyColumn(Column<uint32_t>{1, 2})).ok());
  // Packed input.
  // (packed columns cannot be built trivially here; type mismatch covers
  // the validation path)

  // chunk_rows == 0 is rejected up front and sticks.
  AppendableColumn bad(TypeId::kUInt32, {0});
  EXPECT_FALSE(bad.Append(1).ok());
  EXPECT_FALSE(bad.Snapshot().ok());
  EXPECT_FALSE(bad.Flush().ok());

  // A signed column without a pinned descriptor is rejected up front (the
  // analyzer searches unsigned data only): no data is ever accepted that
  // could not seal.
  AppendableColumn signed_col(TypeId::kInt32, {8});
  Column<int32_t> values;
  for (int32_t i = 0; i < 32; ++i) values.push_back(-i);
  EXPECT_FALSE(signed_col.AppendBatch(AnyColumn(values)).ok());
  EXPECT_FALSE(signed_col.Flush().ok());
  EXPECT_FALSE(signed_col.Snapshot().ok());
  EXPECT_FALSE(signed_col.Append(1).ok());

  // With an explicit ZIGZAG composition, signed ingest works end to end.
  IngestOptions zz;
  zz.chunk_rows = 8;
  zz.descriptor = ZigZag().With("recoded", Ns());
  AppendableColumn zigzag_col(TypeId::kInt32, zz);
  ASSERT_OK(zigzag_col.AppendBatch(AnyColumn(values)));
  ASSERT_OK(zigzag_col.Flush());
  auto zz_snap = zigzag_col.Snapshot();
  ASSERT_OK(zz_snap.status());
  auto zz_back = DecompressChunked(zz_snap->chunked());
  ASSERT_OK(zz_back.status());
  EXPECT_TRUE(*zz_back == AnyColumn(values));
}

TEST(StoreTest, IdFastPathRejectsLengthMismatchedEnvelopes) {
  // A corrupt ID envelope claiming more rows than its data part holds must
  // not be indexed in place: the fast path declines (PlainIdData's length
  // check) and the decompress fallback reports Corruption, exactly as the
  // pre-fast-path behavior did.
  CompressedNode node;
  node.scheme = SchemeDescriptor(SchemeKind::kId);
  node.n = 100;
  node.out_type = TypeId::kUInt32;
  Column<uint32_t> data(50, 7);
  CompressedPart part;
  part.column = AnyColumn(data);
  node.parts.emplace("data", std::move(part));
  const CompressedColumn corrupt(std::move(node));
  EXPECT_FALSE(exec::GetAt(corrupt, 99).ok());
  EXPECT_FALSE(exec::SumCompressed(corrupt).ok());
  EXPECT_FALSE(exec::SelectCompressed(corrupt, RangePredicate{0, 10}).ok());
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(StoreTest, TableRowAlignedAppendsAndSnapshot) {
  ThreadPool pool(2);
  auto table = Table::Create(
      {
          {"orders", TypeId::kUInt32, {256}, "RLE"},
          {"amounts", TypeId::kUInt32, {256}, ""},
          {"wide", TypeId::kUInt64, {256}, ""},
      },
      ExecContext{&pool, 1});
  ASSERT_OK(table.status());
  EXPECT_EQ(table->num_columns(), 3u);

  Column<uint32_t> orders = testutil::RunsColumn(900, 0.1, 71);
  Column<uint32_t> amounts = testutil::UniformColumn<uint32_t>(900, 50000, 72);
  Column<uint64_t> wide = testutil::UniformColumn<uint64_t>(900, 1ull << 40, 73);
  ASSERT_OK(table->AppendBatch(
      {AnyColumn(orders), AnyColumn(amounts), AnyColumn(wide)}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(table->AppendRow({orders[i], amounts[i], wide[i]}));
  }
  EXPECT_EQ(table->num_rows(), 910u);

  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  EXPECT_EQ(snap->rows(), 910u);
  EXPECT_EQ(snap->num_columns(), 3u);
  auto amounts_snap = snap->column("amounts");
  ASSERT_OK(amounts_snap.status());
  EXPECT_EQ((*amounts_snap)->size(), 910u);
  EXPECT_FALSE(snap->column("nope").ok());

  // Point access across columns reconstructs appended rows.
  for (const uint64_t row : {uint64_t{0}, uint64_t{899}, uint64_t{905}}) {
    const uint64_t logical = row < 900 ? row : row - 900;
    auto o = exec::GetAt(snap->column("orders").ValueOrDie()->chunked(), row);
    auto w = exec::GetAt(snap->column("wide").ValueOrDie()->chunked(), row);
    ASSERT_OK(o.status());
    ASSERT_OK(w.status());
    EXPECT_EQ(o->value, orders[logical]);
    EXPECT_EQ(w->value, wide[logical]);
  }

  ASSERT_OK(table->Flush());
  // The pinned catalog scheme really is RLE on every sealed chunk.
  auto orders_col = table->column("orders");
  ASSERT_OK(orders_col.status());
  auto orders_view = (*orders_col)->Snapshot();
  ASSERT_OK(orders_view.status());
  for (const auto& chunk : orders_view->chunked().chunks()) {
    EXPECT_EQ(chunk->column.Descriptor().kind, MakeRle().kind);
  }
}

TEST(StoreTest, TableRefusesIngestAfterColumnSealFailure) {
  // One column pins NS(1), which cannot represent the ingested values: its
  // seal job fails and sets the column's sticky status. The table must then
  // refuse whole rows up front — keeping the columns row-aligned — and
  // snapshots must surface the failure instead of silently dropping data.
  store::IngestOptions bad;
  bad.chunk_rows = 16;
  bad.descriptor = Ns(1);
  auto broken = Table::Create({
      {"good", TypeId::kUInt32, {16}, ""},
      {"bad", TypeId::kUInt32, bad, ""},
  });
  ASSERT_OK(broken.status());

  Column<uint32_t> wide(32, 1000);  // Needs 10 bits; NS(1) cannot pack it.
  ASSERT_OK(broken->AppendBatch({AnyColumn(wide), AnyColumn(wide)}));
  // The inline seal failed and stuck; the next row is refused before any
  // column is touched, so alignment holds.
  EXPECT_FALSE(broken->AppendRow({1, 1}).ok());
  auto good = broken->column("good");
  auto bad_col = broken->column("bad");
  ASSERT_OK(good.status());
  ASSERT_OK(bad_col.status());
  EXPECT_EQ((*good)->size(), (*bad_col)->size());
  EXPECT_FALSE((*bad_col)->status().ok());
  EXPECT_FALSE(broken->Snapshot().ok());
  EXPECT_FALSE(broken->Flush().ok());
}

TEST(StoreTest, TableCreateAndAppendValidation) {
  EXPECT_FALSE(Table::Create({}).ok());
  EXPECT_FALSE(Table::Create({{"", TypeId::kUInt32, {}, ""}}).ok());
  EXPECT_FALSE(Table::Create({{"a", TypeId::kUInt32, {}, ""},
                              {"a", TypeId::kUInt32, {}, ""}})
                   .ok());
  EXPECT_FALSE(Table::Create({{"a", TypeId::kUInt32, {}, "NOPE"}}).ok());

  auto table = Table::Create({{"a", TypeId::kUInt8, {}, ""},
                              {"b", TypeId::kUInt32, {}, ""}});
  ASSERT_OK(table.status());
  // Arity and fit are validated before any column is touched.
  EXPECT_FALSE(table->AppendRow({1}).ok());
  EXPECT_FALSE(table->AppendRow({300, 1}).ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_FALSE(
      table->AppendBatch({AnyColumn(Column<uint8_t>{1}), AnyColumn(Column<uint32_t>{})})
          .ok());
  EXPECT_EQ(table->num_rows(), 0u);
  ASSERT_OK(table->AppendRow({2, 9}));
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(StoreTest, SnapshotColumnLookupIsIndexedAndRejectsUnknownNames) {
  // Many columns: the snapshot's name→index map (built once at snapshot
  // creation) must send every name to the right slot, and unknown names —
  // including near-misses and the empty string — to KeyError, for both
  // column() and column_index().
  std::vector<store::ColumnSpec> specs;
  for (int c = 0; c < 24; ++c) {
    specs.push_back({"col" + std::to_string(c), TypeId::kUInt32, {64}, ""});
  }
  auto table = Table::Create(specs);
  ASSERT_OK(table.status());
  std::vector<AnyColumn> batch;
  for (int c = 0; c < 24; ++c) {
    batch.emplace_back(Column<uint32_t>(100, static_cast<uint32_t>(c)));
  }
  ASSERT_OK(table->AppendBatch(batch));
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  for (int c = 0; c < 24; ++c) {
    const std::string name = "col" + std::to_string(c);
    auto index = snap->column_index(name);
    ASSERT_OK(index.status());
    EXPECT_EQ(*index, static_cast<uint64_t>(c));
    auto view = snap->column(name);
    ASSERT_OK(view.status());
    auto value = exec::GetAt((*view)->chunked(), 0);
    ASSERT_OK(value.status());
    EXPECT_EQ(value->value, static_cast<uint64_t>(c));
  }
  for (const std::string& unknown : {std::string("col24"), std::string("COL0"),
                                     std::string("col"), std::string()}) {
    auto index = snap->column_index(unknown);
    ASSERT_FALSE(index.ok());
    EXPECT_EQ(index.status().code(), StatusCode::kKeyError);
    EXPECT_EQ(snap->column(unknown).status().code(), StatusCode::kKeyError);
  }
}

}  // namespace
}  // namespace recomp
