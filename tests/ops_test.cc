// Unit tests for the columnar operator library (the paper's decompression
// vocabulary): PrefixSum, Gather, Scatter, Constant, PopBack, Elementwise,
// Select, Reduce, FindRuns.

#include <gtest/gtest.h>

#include "ops/constant.h"
#include "ops/elementwise.h"
#include "ops/gather.h"
#include "ops/prefix_sum.h"
#include "ops/reduce.h"
#include "ops/run_boundaries.h"
#include "ops/scatter.h"
#include "ops/select.h"
#include "util/random.h"

namespace recomp {
namespace {

TEST(PrefixSumTest, InclusiveBasic) {
  Column<uint32_t> in{1, 2, 3, 4};
  EXPECT_EQ(ops::PrefixSumInclusive(in), (Column<uint32_t>{1, 3, 6, 10}));
}

TEST(PrefixSumTest, ExclusiveBasic) {
  Column<uint32_t> in{1, 2, 3, 4};
  EXPECT_EQ(ops::PrefixSumExclusive(in), (Column<uint32_t>{0, 1, 3, 6}));
}

TEST(PrefixSumTest, EmptyAndSingle) {
  EXPECT_TRUE(ops::PrefixSumInclusive(Column<uint32_t>{}).empty());
  EXPECT_EQ(ops::PrefixSumInclusive(Column<uint32_t>{9}),
            (Column<uint32_t>{9}));
  EXPECT_EQ(ops::PrefixSumExclusive(Column<uint32_t>{9}),
            (Column<uint32_t>{0}));
}

TEST(PrefixSumTest, WrapsModulo) {
  Column<uint8_t> in{200, 100};  // 300 mod 256 = 44
  EXPECT_EQ(ops::PrefixSumInclusive(in), (Column<uint8_t>{200, 44}));
}

TEST(PrefixSumTest, InPlaceMatchesOutOfPlace) {
  Rng rng(3);
  Column<uint64_t> in;
  for (int i = 0; i < 1000; ++i) in.push_back(rng.Below(1000));
  Column<uint64_t> expected = ops::PrefixSumInclusive(in);
  ops::PrefixSumInclusiveInPlace(&in);
  EXPECT_EQ(in, expected);
}

TEST(PrefixSumTest, InverseOfAdjacentDifference) {
  // PrefixSum(Delta(x)) == x, the identity behind the paper's DELTA scheme.
  Rng rng(4);
  Column<uint32_t> col;
  for (int i = 0; i < 500; ++i) col.push_back(static_cast<uint32_t>(rng.Next()));
  Column<uint32_t> deltas(col.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    deltas[i] = col[i] - prev;
    prev = col[i];
  }
  EXPECT_EQ(ops::PrefixSumInclusive(deltas), col);
}

TEST(GatherTest, Basic) {
  Column<uint32_t> values{10, 20, 30};
  Column<uint32_t> indices{2, 0, 1, 2};
  auto out = ops::Gather(values, indices);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (Column<uint32_t>{30, 10, 20, 30}));
}

TEST(GatherTest, OutOfRangeIndexRejected) {
  Column<uint32_t> values{10};
  Column<uint32_t> indices{1};
  EXPECT_EQ(ops::Gather(values, indices).status().code(),
            StatusCode::kOutOfRange);
}

TEST(GatherTest, EmptyIndices) {
  Column<uint64_t> values{1, 2};
  auto out = ops::Gather(values, Column<uint32_t>{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ScatterTest, IntoExisting) {
  Column<uint32_t> target(5, 0);
  Status s = ops::ScatterInto(Column<uint32_t>{7, 8}, Column<uint32_t>{1, 3},
                              &target);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(target, (Column<uint32_t>{0, 7, 0, 8, 0}));
}

TEST(ScatterTest, ArityMismatchRejected) {
  Column<uint32_t> target(5, 0);
  EXPECT_FALSE(ops::ScatterInto(Column<uint32_t>{7}, Column<uint32_t>{1, 2},
                                &target)
                   .ok());
}

TEST(ScatterTest, OutOfRangeRejected) {
  Column<uint32_t> target(2, 0);
  EXPECT_EQ(ops::ScatterInto(Column<uint32_t>{7}, Column<uint32_t>{2}, &target)
                .code(),
            StatusCode::kOutOfRange);
}

TEST(ScatterTest, ConstantVariant) {
  auto out = ops::ScatterConstant<uint32_t>(1, Column<uint32_t>{0, 4}, 6);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (Column<uint32_t>{1, 0, 0, 0, 1, 0}));
}

TEST(ConstantTest, FillsValue) {
  EXPECT_EQ(ops::Constant<uint16_t>(3, 4), (Column<uint16_t>{3, 3, 3, 3}));
  EXPECT_TRUE(ops::Constant<uint16_t>(3, 0).empty());
}

TEST(PopBackTest, DropsLast) {
  EXPECT_EQ(ops::PopBack(Column<uint32_t>{1, 2, 3}), (Column<uint32_t>{1, 2}));
  EXPECT_TRUE(ops::PopBack(Column<uint32_t>{1}).empty());
  EXPECT_TRUE(ops::PopBack(Column<uint32_t>{}).empty());
}

TEST(ElementwiseTest, AllOps) {
  Column<uint32_t> a{10, 20, 30};
  Column<uint32_t> b{3, 4, 5};
  EXPECT_EQ(*ops::Elementwise(ops::BinOp::kAdd, a, b),
            (Column<uint32_t>{13, 24, 35}));
  EXPECT_EQ(*ops::Elementwise(ops::BinOp::kSub, a, b),
            (Column<uint32_t>{7, 16, 25}));
  EXPECT_EQ(*ops::Elementwise(ops::BinOp::kMul, a, b),
            (Column<uint32_t>{30, 80, 150}));
  EXPECT_EQ(*ops::Elementwise(ops::BinOp::kDiv, a, b),
            (Column<uint32_t>{3, 5, 6}));
}

TEST(ElementwiseTest, SubWrapsUnsigned) {
  Column<uint32_t> a{1};
  Column<uint32_t> b{2};
  EXPECT_EQ(*ops::Elementwise(ops::BinOp::kSub, a, b),
            (Column<uint32_t>{~uint32_t{0}}));
}

TEST(ElementwiseTest, DivisionByZeroRejected) {
  Column<uint32_t> a{1};
  Column<uint32_t> b{0};
  EXPECT_FALSE(ops::Elementwise(ops::BinOp::kDiv, a, b).ok());
  EXPECT_FALSE(ops::ElementwiseScalar<uint32_t>(ops::BinOp::kDiv, a, 0).ok());
}

TEST(ElementwiseTest, ArityMismatchRejected) {
  EXPECT_FALSE(ops::Elementwise(ops::BinOp::kAdd, Column<uint32_t>{1},
                                Column<uint32_t>{1, 2})
                   .ok());
}

TEST(ElementwiseTest, ScalarForms) {
  Column<uint32_t> a{10, 20};
  EXPECT_EQ(*ops::ElementwiseScalar<uint32_t>(ops::BinOp::kAdd, a, 5),
            (Column<uint32_t>{15, 25}));
  EXPECT_EQ(*ops::ElementwiseScalar<uint32_t>(ops::BinOp::kDiv, a, 4),
            (Column<uint32_t>{2, 5}));
  EXPECT_EQ(*ops::ElementwiseScalar<uint32_t>(ops::BinOp::kMul, a, 3),
            (Column<uint32_t>{30, 60}));
  EXPECT_EQ(*ops::ElementwiseScalar<uint32_t>(ops::BinOp::kSub, a, 1),
            (Column<uint32_t>{9, 19}));
}

TEST(SelectTest, RangeInclusiveBothEnds) {
  Column<uint32_t> col{5, 1, 7, 5, 9};
  auto out = ops::SelectRange<uint32_t>(col, 5, 7);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (Column<uint32_t>{0, 2, 3}));
  EXPECT_EQ(ops::CountRange<uint32_t>(col, 5, 7), 3u);
}

TEST(SelectTest, EmptyResult) {
  Column<uint32_t> col{5, 1};
  auto out = ops::SelectRange<uint32_t>(col, 100, 200);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(SelectTest, SignedRange) {
  Column<int32_t> col{-5, 0, 5};
  auto out = ops::SelectRange<int32_t>(col, -5, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (Column<uint32_t>{0, 1}));
}

TEST(ReduceTest, SumMinMax) {
  Column<uint32_t> col{4, 2, 9};
  EXPECT_EQ(ops::Sum(col), 15u);
  EXPECT_EQ(*ops::Min(col), 2u);
  EXPECT_EQ(*ops::Max(col), 9u);
}

TEST(ReduceTest, EmptyMinMaxRejected) {
  Column<uint32_t> empty;
  EXPECT_EQ(ops::Sum(empty), 0u);
  EXPECT_FALSE(ops::Min(empty).ok());
  EXPECT_FALSE(ops::Max(empty).ok());
}

TEST(FindRunsTest, Basic) {
  Column<uint32_t> col{7, 7, 7, 3, 3, 9};
  auto runs = ops::FindRuns(col);
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(runs->values, (Column<uint32_t>{7, 3, 9}));
  EXPECT_EQ(runs->lengths, (Column<uint32_t>{3, 2, 1}));
  EXPECT_EQ(runs->end_positions, (Column<uint32_t>{3, 5, 6}));
}

TEST(FindRunsTest, EmptyAndSingle) {
  auto empty = ops::FindRuns(Column<uint32_t>{});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->values.empty());

  auto single = ops::FindRuns(Column<uint32_t>{4});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->values, (Column<uint32_t>{4}));
  EXPECT_EQ(single->end_positions, (Column<uint32_t>{1}));
}

TEST(FindRunsTest, AllDistinctAndAllEqual) {
  auto distinct = ops::FindRuns(Column<uint32_t>{1, 2, 3});
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->values.size(), 3u);

  auto equal = ops::FindRuns(Column<uint32_t>(1000, 5));
  ASSERT_TRUE(equal.ok());
  EXPECT_EQ(equal->values.size(), 1u);
  EXPECT_EQ(equal->lengths[0], 1000u);
}

TEST(FindRunsTest, LengthsAreDeltasOfEndPositions) {
  // The identity behind RLE == RPE ∘ {positions: DELTA} (paper §II-A).
  Rng rng(8);
  Column<uint32_t> col;
  for (int r = 0; r < 200; ++r) {
    const uint32_t v = static_cast<uint32_t>(rng.Below(10));
    const uint64_t len = rng.Geometric(0.2);
    for (uint64_t i = 0; i < len; ++i) col.push_back(v);
  }
  auto runs = ops::FindRuns(col);
  ASSERT_TRUE(runs.ok());
  uint32_t prev = 0;
  for (size_t r = 0; r < runs->lengths.size(); ++r) {
    EXPECT_EQ(runs->lengths[r], runs->end_positions[r] - prev);
    prev = runs->end_positions[r];
  }
  EXPECT_EQ(runs->end_positions.back(), col.size());
}

}  // namespace
}  // namespace recomp
