// Runtime semantics of the annotated mutex primitives (util/mutex.h).
//
// The thread-safety annotations are compile-time only (and regression-tested
// in tests/compile_fail/); these tests pin the runtime behavior the wrappers
// must preserve: real mutual exclusion, TryLock semantics, CondVar wakeups
// and timeouts, and composition with the thread pool's ParallelFor.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace recomp {
namespace {

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterUnlock) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());

  // Probe from another thread: the mutex is held, so TryLock must fail
  // (std::mutex::try_lock from the owning thread would be UB).
  std::future<bool> held_probe =
      std::async(std::launch::async, [&mu] { return mu.TryLock(); });
  EXPECT_FALSE(held_probe.get());

  mu.Unlock();
  std::future<bool> free_probe = std::async(std::launch::async, [&mu] {
    if (!mu.TryLock()) return false;
    mu.Unlock();
    return true;
  });
  EXPECT_TRUE(free_probe.get());
}

TEST(MutexTest, MutexLockProvidesMutualExclusionUnderContention) {
  Mutex mu;
  int64_t counter = 0;  // Deliberately not atomic: the lock is the guard.

  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MutexLock lock(&mu);
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrementsPerThread);
}

TEST(MutexTest, MutexLockComposesWithParallelFor) {
  // The pattern every parallel operator uses: worker tasks fold into shared
  // state under a MutexLock while ParallelFor's own latch (also a Mutex +
  // CondVar) tracks completion.
  ThreadPool pool(4);
  ExecContext ctx{&pool, 1};

  Mutex mu;
  uint64_t sum = 0;
  constexpr uint64_t kN = 1000;
  ParallelFor(ctx, kN, [&](uint64_t i) {
    MutexLock lock(&mu);
    sum += i;
  });

  MutexLock lock(&mu);
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(MutexTest, CondVarWakesInlineWaitLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    // Inline wait loop, not a predicate lambda (see util/mutex.h).
    while (!ready) cv.Wait(lock);
    observed = 42;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(MutexTest, CondVarWaitForReportsTimeout) {
  Mutex mu;
  CondVar cv;

  MutexLock lock(&mu);
  // Nothing will ever notify: the wait must report timeout, with the lock
  // held again on return (the terminal EXPECT below relies on that).
  EXPECT_TRUE(cv.WaitFor(lock, std::chrono::milliseconds(5)));
}

TEST(MutexTest, CondVarWaitUntilReturnsFalseWhenNotified) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread notifier([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });

  bool timed_out = false;
  {
    MutexLock lock(&mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ready) {
      if (cv.WaitUntil(lock, deadline)) {
        timed_out = true;
        break;
      }
    }
  }
  notifier.join();
  EXPECT_FALSE(timed_out);
}

}  // namespace
}  // namespace recomp
