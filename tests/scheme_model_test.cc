// Tests for the model schemes (STEP, PLIN) and the MODELED combinator —
// the paper's FOR ≡ STEP + NS decomposition and its piecewise-linear
// enrichment.

#include <gtest/gtest.h>

#include "schemes/scheme.h"
#include "test_util.h"
#include "util/bits.h"
#include "util/random.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;

/// Step-level data: constant per segment of `ell`, plus bounded noise.
Column<uint32_t> StepColumn(uint64_t n, uint64_t ell, uint32_t noise_bound,
                            uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col;
  col.reserve(n);
  uint32_t level = 1000;
  for (uint64_t i = 0; i < n; ++i) {
    if (i % ell == 0) level = 1000 + static_cast<uint32_t>(rng.Below(1u << 20));
    col.push_back(level + (noise_bound == 0
                               ? 0
                               : static_cast<uint32_t>(rng.Below(noise_bound))));
  }
  return col;
}

TEST(StepSchemeTest, ExactStepFunctionRoundTrips) {
  Column<uint32_t> col = StepColumn(4096, 256, 0, 51);
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), Step(256));
  EXPECT_EQ(c.PayloadBytes(), (4096 / 256) * 4u);
  EXPECT_DOUBLE_EQ(c.Ratio(), 256.0);
}

TEST(StepSchemeTest, NonStepDataRejected) {
  Column<uint32_t> col = StepColumn(1024, 128, 5, 52);  // noisy
  auto result = Compress(AnyColumn(col), Step(128));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StepSchemeTest, RaggedTailSegment) {
  Column<uint32_t> col{5, 5, 5, 9};  // ell=3: segments {5,5,5}, {9}
  ExpectRoundTrip(AnyColumn(col), Step(3));
}

TEST(ModeledStepTest, ReconstructsFor) {
  // MODELED(STEP) + NS == the classic FOR scheme.
  Column<uint32_t> col = StepColumn(65536, 128, 100, 53);  // 7-bit noise
  SchemeDescriptor for_desc = Modeled(Step(128)).With("residual", Ns());
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), for_desc);
  const SchemeDescriptor resolved = c.Descriptor();
  EXPECT_EQ(resolved.children.at("residual").params.width, 7);
  // refs: 512 * 4 bytes; residual: 65536 * 7 bits.
  EXPECT_EQ(c.PayloadBytes(), 512 * 4 + bits::PackedByteSize(65536, 7));
}

TEST(ModeledStepTest, ForBytesEqualStepPlusNs) {
  // The paper's additive identity, measured rather than estimated.
  Column<uint32_t> col = StepColumn(16384, 64, 37, 54);
  auto modeled = Compress(AnyColumn(col),
                          Modeled(Step(64)).With("residual", Ns()));
  ASSERT_OK(modeled.status());
  const uint64_t refs_bytes =
      modeled->root().parts.at("refs").column->ByteSize();
  const uint64_t residual_bytes =
      modeled->root().parts.at("residual").sub->PayloadBytes();
  EXPECT_EQ(modeled->PayloadBytes(), refs_bytes + residual_bytes);
}

TEST(ModeledStepTest, ResidualsAreNonNegativeMinima) {
  Column<uint32_t> col{10, 14, 12, 100, 103, 101};
  auto compressed =
      Compress(AnyColumn(col), Modeled(Step(3)));
  ASSERT_OK(compressed.status());
  EXPECT_EQ(compressed->root().parts.at("refs").column->As<uint32_t>(),
            (Column<uint32_t>{10, 100}));
  EXPECT_EQ(compressed->root().parts.at("residual").column->As<uint32_t>(),
            (Column<uint32_t>{0, 4, 2, 0, 3, 1}));
}

TEST(ModeledStepTest, AutoSegmentLengthPicksSensibly) {
  // Strong locality at scale 128: auto-ell should not pick a huge segment.
  Column<uint32_t> col = StepColumn(32768, 128, 16, 55);
  auto compressed =
      Compress(AnyColumn(col), Modeled(Step()).With("residual", Ns()));
  ASSERT_OK(compressed.status());
  const uint64_t ell =
      compressed->Descriptor().args[0].params.segment_length;
  EXPECT_GT(ell, 0u);
  EXPECT_LE(ell, 1024u);
  auto back = Decompress(*compressed);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(ModeledStepTest, WorksOnUint64) {
  Rng rng(56);
  Column<uint64_t> col;
  for (int i = 0; i < 10000; ++i) {
    col.push_back((uint64_t{1} << 40) + rng.Below(1000));
  }
  CompressedColumn c = ExpectRoundTrip(
      AnyColumn(col), Modeled(Step(512)).With("residual", Ns()));
  EXPECT_GT(c.Ratio(), 5.0);
}

/// Linear data with bounded noise.
Column<uint32_t> TrendColumn(uint64_t n, double slope, uint32_t noise,
                             uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col;
  col.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    col.push_back(static_cast<uint32_t>(1000 + slope * i) +
                  static_cast<uint32_t>(noise ? rng.Below(noise) : 0));
  }
  return col;
}

TEST(PlinSchemeTest, ExactLineRoundTrips) {
  Column<uint32_t> col;
  for (uint32_t i = 0; i < 1024; ++i) col.push_back(500 + 3 * i);
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), Plin(256));
  // 4 segments, each base + slope.
  EXPECT_EQ(c.PayloadBytes(), 4u * (4 + 8));
}

TEST(PlinSchemeTest, NoisyLineRejectedStandalone) {
  Column<uint32_t> col = TrendColumn(1024, 2.5, 10, 61);
  EXPECT_FALSE(Compress(AnyColumn(col), Plin(128)).ok());
}

TEST(ModeledPlinTest, BeatsStepOnTrends) {
  // The paper's §II-B enrichment: on trending data the linear model leaves a
  // much narrower residual than the step model at the same segment length.
  Column<uint32_t> col = TrendColumn(65536, 3.7, 16, 62);
  auto step = Compress(AnyColumn(col),
                       Modeled(Step(1024)).With("residual", Ns()));
  auto plin = Compress(AnyColumn(col),
                       Modeled(Plin(1024)).With("residual", Ns()));
  ASSERT_OK(step.status());
  ASSERT_OK(plin.status());
  const int step_width =
      step->Descriptor().children.at("residual").params.width;
  const int plin_width =
      plin->Descriptor().children.at("residual").params.width;
  EXPECT_LT(plin_width, step_width);
  EXPECT_LT(plin->PayloadBytes(), step->PayloadBytes());

  auto back = Decompress(*plin);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(ModeledPlinTest, DecliningTrend) {
  Column<uint32_t> col;
  for (uint32_t i = 0; i < 8192; ++i) col.push_back(1u << 20) ;
  for (uint64_t i = 0; i < col.size(); ++i) {
    col[i] = (1u << 20) - static_cast<uint32_t>(i * 5);
  }
  ExpectRoundTrip(AnyColumn(col), Modeled(Plin(512)).With("residual", Ns()));
}

TEST(ModeledPlinTest, RoundTripsRandomData) {
  // Even on structure-free data the model is exact (residual just gets wide).
  ExpectRoundTrip(
      AnyColumn(testutil::UniformColumn<uint32_t>(4096, 1u << 28, 63)),
      Modeled(Plin(256)).With("residual", Ns()));
}

TEST(ModeledTest, RequiresModelArgument) {
  SchemeDescriptor bad(SchemeKind::kModeled);
  EXPECT_FALSE(Compress(AnyColumn(Column<uint32_t>{1}), bad).ok());
}

TEST(ModeledTest, EmptyColumn) {
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}),
                  Modeled(Step(128)).With("residual", Ns()));
}

}  // namespace
}  // namespace recomp
