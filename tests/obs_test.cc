// Tests for the observability layer (src/obs/): metric primitives, the
// registry and its snapshots, scoped tracing, and the instrumentation wired
// through the subsystems. The registry is process-wide and other tests in
// this binary move its counters, so every assertion here is DELTA-based —
// snapshot before, act, snapshot after — never an absolute value.
//
// The concurrent cases double as the TSan coverage for metrics: CI runs the
// whole binary under -fsanitize=thread, so writers racing Snapshot() here
// prove the relaxed-atomic contract (untorn cells, monotone counters).

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "core/fused.h"
#include "core/serialize.h"
#include "exec/scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/dispatch.h"
#include "store/table.h"
#include "test_util.h"

namespace recomp {
namespace {

using obs::MetricsSnapshot;
using obs::Registry;

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, AddsAndSums) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(ObsCounterTest, ConcurrentAddsAreExactAfterJoin) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(ObsGaugeTest, SetAddSubtract) {
  obs::Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(10);
  g.Add(5);
  g.Subtract(20);
  EXPECT_EQ(g.Value(), -5);
}

TEST(ObsHistogramTest, BucketsByBitWidth) {
  obs::Histogram h;
  h.Record(0);     // bucket 0
  h.Record(1);     // bucket 1
  h.Record(2);     // bucket 2: [2, 4)
  h.Record(3);     // bucket 2
  h.Record(1024);  // bucket 11: [1024, 2048)
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[11], 1u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1030.0 / 5.0);
}

TEST(ObsHistogramTest, BucketBounds) {
  EXPECT_EQ(obs::HistogramBucketBound(0), 0u);
  EXPECT_EQ(obs::HistogramBucketBound(1), 1u);
  EXPECT_EQ(obs::HistogramBucketBound(2), 3u);
  EXPECT_EQ(obs::HistogramBucketBound(11), 2047u);
  EXPECT_EQ(obs::HistogramBucketBound(obs::kHistogramBuckets - 1),
            ~uint64_t{0});
}

TEST(ObsHistogramTest, QuantileReturnsBucketUpperBound) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(2);  // bucket 2, bound 3
  h.Record(1u << 20);                        // bucket 21
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 3u);
  EXPECT_EQ(snap.Quantile(0.0), 3u);
  EXPECT_EQ(snap.Quantile(1.0), obs::HistogramBucketBound(21));
  EXPECT_EQ(obs::HistogramSnapshot{}.Quantile(0.5), 0u);
}

TEST(ObsEnabledTest, KillSwitchDropsUpdates) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  ASSERT_TRUE(obs::Enabled());
  obs::SetEnabled(false);
  c.Increment();
  g.Set(7);
  h.Record(100);
  obs::SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Snapshot().count, 0u);
  c.Increment();  // And back on.
  EXPECT_EQ(c.Value(), 1u);
}

// ---------------------------------------------------------------------------
// Registry and snapshots
// ---------------------------------------------------------------------------

TEST(ObsRegistryTest, SameNameSameMetric) {
  obs::Counter& a = Registry::Get().GetCounter("obs_test.same_name");
  obs::Counter& b = Registry::Get().GetCounter("obs_test.same_name");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = Registry::Get().GetHistogram("obs_test.same_hist");
  obs::Histogram& hb = Registry::Get().GetHistogram("obs_test.same_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(ObsRegistryTest, SnapshotReflectsUpdates) {
  obs::Counter& c = Registry::Get().GetCounter("obs_test.snap_counter");
  obs::Gauge& g = Registry::Get().GetGauge("obs_test.snap_gauge");
  obs::Histogram& h = Registry::Get().GetHistogram("obs_test.snap_hist");
  const MetricsSnapshot before = Registry::Get().Snapshot();
  c.Add(3);
  g.Add(-2);
  h.Record(5);
  const MetricsSnapshot after = Registry::Get().Snapshot();
  EXPECT_EQ(after.counter("obs_test.snap_counter") -
                before.counter("obs_test.snap_counter"),
            3u);
  EXPECT_EQ(after.gauge("obs_test.snap_gauge") -
                before.gauge("obs_test.snap_gauge"),
            -2);
  EXPECT_EQ(after.histogram("obs_test.snap_hist").count -
                before.histogram("obs_test.snap_hist").count,
            1u);
}

TEST(ObsRegistryTest, AbsentNamesReadAsZero) {
  const MetricsSnapshot snap = Registry::Get().Snapshot();
  EXPECT_EQ(snap.counter("obs_test.never_created"), 0u);
  EXPECT_EQ(snap.gauge("obs_test.never_created"), 0);
  EXPECT_EQ(snap.histogram("obs_test.never_created").count, 0u);
}

TEST(ObsRegistryTest, SnapshotSectionsAreSortedByName) {
  Registry::Get().GetCounter("obs_test.sort.b");
  Registry::Get().GetCounter("obs_test.sort.a");
  const MetricsSnapshot snap = Registry::Get().Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST(ObsRegistryTest, TextAndJsonExposition) {
  Registry::Get().GetCounter("obs_test.expo_counter").Add(12);
  Registry::Get().GetGauge("obs_test.expo_gauge").Set(-4);
  Registry::Get().GetHistogram("obs_test.expo_hist").Record(9);
  const MetricsSnapshot snap = Registry::Get().Snapshot();
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("obs_test.expo_counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.expo_gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test.expo_hist"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.expo_counter\""), std::string::npos);
}

// Satellite 4 (TSan coverage): writer threads hammer one counter, one gauge,
// and one histogram while the main thread snapshots concurrently. Under
// -fsanitize=thread this proves the relaxed-atomic update/snapshot contract;
// everywhere it proves counters read monotone across snapshots and exact
// once writers quiesce.
TEST(ObsConcurrencyTest, SnapshotsRaceWritersSafely) {
  obs::Counter& c = Registry::Get().GetCounter("obs_test.race_counter");
  obs::Gauge& g = Registry::Get().GetGauge("obs_test.race_gauge");
  obs::Histogram& h = Registry::Get().GetHistogram("obs_test.race_hist");
  const MetricsSnapshot before = Registry::Get().Snapshot();
  const uint64_t base = before.counter("obs_test.race_counter");

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Increment();
        g.Add(1);
        h.Record(i & 1023);
      }
    });
  }

  uint64_t last = base;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = Registry::Get().Snapshot();
    const uint64_t now = snap.counter("obs_test.race_counter");
    EXPECT_GE(now, last) << "counter went backwards across snapshots";
    last = now;
    // A histogram snapshot derives count from its buckets, so it is
    // self-consistent even mid-write.
    const obs::HistogramSnapshot hist = snap.histogram("obs_test.race_hist");
    uint64_t bucket_total = 0;
    for (uint64_t b : hist.buckets) bucket_total += b;
    EXPECT_EQ(hist.count, bucket_total);
  }
  for (auto& t : writers) t.join();

  const MetricsSnapshot after = Registry::Get().Snapshot();
  EXPECT_EQ(after.counter("obs_test.race_counter") - base,
            kThreads * kPerThread);
  EXPECT_EQ(after.gauge("obs_test.race_gauge") -
                before.gauge("obs_test.race_gauge"),
            static_cast<int64_t>(kThreads * kPerThread));
  EXPECT_EQ(after.histogram("obs_test.race_hist").count -
                before.histogram("obs_test.race_hist").count,
            kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Tracing: spans, profiles, thread-local context
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, SpanRecordsIntoRegistryHistogram) {
  const MetricsSnapshot before = Registry::Get().Snapshot();
  { const obs::Span span("obs_test.span"); }
  const MetricsSnapshot after = Registry::Get().Snapshot();
  EXPECT_EQ(after.histogram("span.obs_test.span").count -
                before.histogram("span.obs_test.span").count,
            1u);
}

TEST(ObsTraceTest, ProfileCapturesPhasesAndCounters) {
  obs::ScanProfile profile;
  EXPECT_EQ(obs::CurrentProfile(), nullptr);
  {
    const obs::ProfileScope scope(&profile);
    EXPECT_EQ(obs::CurrentProfile(), &profile);
    { const obs::Span span("obs_test.phase_a"); }
    { const obs::Span span("obs_test.phase_b"); }
    profile.AddCounter("rows", 10);
    profile.AddCounter("rows", 5);
  }
  EXPECT_EQ(obs::CurrentProfile(), nullptr);
  ASSERT_EQ(profile.phases().size(), 2u);
  EXPECT_EQ(profile.phases()[0].name, "obs_test.phase_a");
  EXPECT_EQ(profile.phases()[1].name, "obs_test.phase_b");
  EXPECT_EQ(profile.counter("rows"), 15u);
  EXPECT_EQ(profile.counter("absent"), 0u);
  const std::string text = profile.ToString();
  EXPECT_NE(text.find("obs_test.phase_a"), std::string::npos);
  EXPECT_NE(text.find("rows"), std::string::npos);
}

TEST(ObsTraceTest, TotalCountsOnlyOutermostSpans) {
  obs::ScanProfile profile;
  {
    const obs::ProfileScope scope(&profile);
    const obs::Span outer("obs_test.outer");
    const obs::Span inner("obs_test.inner");  // Nested: not in total_ns.
  }
  ASSERT_EQ(profile.phases().size(), 2u);
  // Inner closes first (reverse destruction order); only the outer phase
  // contributes to total_ns, so total equals the outer phase exactly.
  EXPECT_EQ(profile.phases()[0].name, "obs_test.inner");
  EXPECT_EQ(profile.total_ns(), profile.phases()[1].ns);
  EXPECT_LE(profile.phases()[0].ns, profile.total_ns());
}

TEST(ObsTraceTest, ProfileScopesNestAndRestore) {
  obs::ScanProfile outer_profile;
  obs::ScanProfile inner_profile;
  {
    const obs::ProfileScope outer(&outer_profile);
    {
      const obs::ProfileScope inner(&inner_profile);
      EXPECT_EQ(obs::CurrentProfile(), &inner_profile);
      { const obs::Span span("obs_test.nested_scope"); }
    }
    EXPECT_EQ(obs::CurrentProfile(), &outer_profile);
  }
  EXPECT_EQ(inner_profile.phases().size(), 1u);
  EXPECT_TRUE(outer_profile.phases().empty());
}

TEST(ObsTraceTest, SpansOnOtherThreadsSkipTheProfile) {
  obs::ScanProfile profile;
  {
    const obs::ProfileScope scope(&profile);
    std::thread worker([] {
      // The profile context is thread-local: this span must not land in the
      // installing thread's profile (only in the global histogram).
      const obs::Span span("obs_test.other_thread");
    });
    worker.join();
  }
  EXPECT_TRUE(profile.phases().empty());
}

// ---------------------------------------------------------------------------
// Dispatch counters (satellite: prove the AVX2 kernels actually execute)
// ---------------------------------------------------------------------------

// Regression test for "the build quietly lost its vector kernels": when
// AVX2 is compiled in and the CPU supports it, a fused decode must count on
// the avx2 side of the dispatch counters, not the scalar side.
TEST(ObsDispatchTest, Avx2PathCountsWhenAvailable) {
  if (std::getenv("RECOMP_FORCE_SCALAR") != nullptr) {
    GTEST_SKIP() << "RECOMP_FORCE_SCALAR is set: scalar dispatch is forced";
  }
  if (!ops::HasAvx2()) {
    GTEST_SKIP() << "AVX2 not compiled in or not supported by this CPU";
  }
  const auto col = testutil::UniformColumn<uint32_t>(4096, 1u << 20, 99);
  const auto compressed = Compress(AnyColumn(col), Ns());
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();

  const MetricsSnapshot before = Registry::Get().Snapshot();
  const auto back = FusedDecompress(*compressed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const MetricsSnapshot after = Registry::Get().Snapshot();

  EXPECT_EQ(after.counter("fused.decode.ns.avx2") -
                before.counter("fused.decode.ns.avx2"),
            1u);
  EXPECT_EQ(after.counter("fused.decode.ns.scalar") -
                before.counter("fused.decode.ns.scalar"),
            0u);
  EXPECT_EQ(after.counter("fused.decoded_bytes.ns.avx2") -
                before.counter("fused.decoded_bytes.ns.avx2"),
            4096u * sizeof(uint32_t));
  EXPECT_EQ(after.gauge("dispatch.avx2_live"), 1);
}

TEST(ObsDispatchTest, ForcedScalarCountsOnTheScalarSide) {
  const auto col = testutil::UniformColumn<uint32_t>(1024, 1u << 16, 7);
  const auto compressed = Compress(AnyColumn(col), Ns());
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();

  ops::ForceScalar(true);
  const MetricsSnapshot before = Registry::Get().Snapshot();
  const auto back = FusedDecompress(*compressed);
  const MetricsSnapshot after = Registry::Get().Snapshot();
  ops::ForceScalar(false);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(after.counter("fused.decode.ns.scalar") -
                before.counter("fused.decode.ns.scalar"),
            1u);
  EXPECT_EQ(after.counter("fused.decode.ns.avx2") -
                before.counter("fused.decode.ns.avx2"),
            0u);
  EXPECT_EQ(after.gauge("dispatch.avx2_live"), 0);
}

// ---------------------------------------------------------------------------
// Subsystem rollups: scan, stats ToString, serialize, end-to-end
// ---------------------------------------------------------------------------

// Satellite 3: the per-scan stats structs roll up into the global registry
// at scan exit, and both render via ToString().
TEST(ObsScanRollupTest, ScanFoldsStatsIntoRegistryAndProfile) {
  ThreadPool pool(2);
  const ExecContext ctx{&pool};
  std::vector<store::ColumnSpec> specs(2);
  specs[0].name = "k";
  specs[0].type = TypeId::kUInt32;
  specs[1].name = "v";
  specs[1].type = TypeId::kUInt32;
  auto table = store::Table::Create(specs, ctx);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  std::vector<AnyColumn> batch(2);
  batch[0] = AnyColumn(testutil::RunsColumn(20000, 0.01, 3));
  batch[1] = AnyColumn(testutil::UniformColumn<uint32_t>(20000, 1000, 4));
  ASSERT_OK(table->AppendBatch(batch));
  ASSERT_OK(table->Flush());
  const auto snap = table->Snapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  exec::ScanSpec spec;
  spec.Filter("v", {0, 499}).Project({"k"});
  const MetricsSnapshot before = Registry::Get().Snapshot();
  obs::ScanProfile profile;
  Result<exec::ScanResult> result{exec::ScanResult{}};
  {
    const obs::ProfileScope scope(&profile);
    result = exec::Scan(*snap, spec, ctx);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MetricsSnapshot after = Registry::Get().Snapshot();

  // Registry deltas match the result's own stats.
  EXPECT_EQ(after.counter("scan.queries") - before.counter("scan.queries"),
            1u);
  EXPECT_EQ(after.counter("scan.rows_scanned") -
                before.counter("scan.rows_scanned"),
            result->rows_scanned);
  EXPECT_EQ(after.counter("scan.rows_matched") -
                before.counter("scan.rows_matched"),
            result->rows_matched);
  ASSERT_EQ(result->filters.size(), 1u);
  const exec::ChunkedSelectionStats& fstats = result->filters[0].stats;
  EXPECT_EQ(after.counter("scan.chunks_executed") -
                before.counter("scan.chunks_executed"),
            fstats.chunks_executed);
  ASSERT_EQ(result->projections.size(), 1u);
  const exec::GatherStats& gstats = result->projections[0].gather;
  EXPECT_EQ(after.counter("gather.rows") - before.counter("gather.rows"),
            gstats.rows);
  EXPECT_EQ(after.counter("gather.chunks_touched") -
                before.counter("gather.chunks_touched"),
            gstats.chunks_touched);
  EXPECT_EQ(after.histogram("scan.selectivity_permille").count -
                before.histogram("scan.selectivity_permille").count,
            1u);

  // The profile got the same numbers via the thread-local context.
  EXPECT_EQ(profile.counter("rows_scanned"), result->rows_scanned);
  EXPECT_EQ(profile.counter("rows_matched"), result->rows_matched);
  EXPECT_EQ(profile.counter("gather_rows"), gstats.rows);
  // And the scan phases were spanned.
  bool saw_filter = false;
  bool saw_materialize = false;
  for (const auto& phase : profile.phases()) {
    saw_filter |= phase.name == "scan.filter";
    saw_materialize |= phase.name == "scan.materialize";
  }
  EXPECT_TRUE(saw_filter);
  EXPECT_TRUE(saw_materialize);

  // Both stats structs render human-readably.
  const std::string ftext = fstats.ToString();
  EXPECT_NE(ftext.find("chunks total="), std::string::npos);
  EXPECT_NE(ftext.find("executed="), std::string::npos);
  const std::string gtext = gstats.ToString();
  EXPECT_NE(gtext.find("rows="), std::string::npos);
  EXPECT_NE(gtext.find("chunks_touched="), std::string::npos);
}

TEST(ObsSerializeTest, RoundTripCountsBytesBothWays) {
  const auto col = testutil::UniformColumn<uint32_t>(2048, 1u << 12, 11);
  const auto compressed = Compress(AnyColumn(col), Ns());
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  const MetricsSnapshot before = Registry::Get().Snapshot();
  const auto buffer = Serialize(*compressed);
  ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
  const auto back = Deserialize(*buffer);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const MetricsSnapshot after = Registry::Get().Snapshot();
  EXPECT_EQ(after.counter("serialize.bytes_written") -
                before.counter("serialize.bytes_written"),
            buffer->size());
  EXPECT_EQ(after.counter("serialize.bytes_read") -
                before.counter("serialize.bytes_read"),
            buffer->size());
  EXPECT_EQ(after.counter("serialize.envelopes_written") -
                before.counter("serialize.envelopes_written"),
            1u);
  EXPECT_EQ(after.counter("serialize.envelopes_read") -
                before.counter("serialize.envelopes_read"),
            1u);
}

// The acceptance-style end-to-end: one mixed ingest/scan/recompress workload
// moves counters in every instrumented subsystem.
TEST(ObsIntegrationTest, MixedWorkloadTouchesEverySubsystem) {
  const MetricsSnapshot before = Registry::Get().Snapshot();
  {
    ThreadPool pool(2);
    const ExecContext ctx{&pool};
    std::vector<store::ColumnSpec> specs(2);
    specs[0].name = "a";
    specs[0].type = TypeId::kUInt32;
    specs[1].name = "b";
    specs[1].type = TypeId::kUInt32;
    auto table = store::Table::Create(specs, ctx);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    std::vector<AnyColumn> batch(2);
    batch[0] = AnyColumn(testutil::RunsColumn(30000, 0.02, 5));
    batch[1] = AnyColumn(testutil::UniformColumn<uint32_t>(30000, 50000, 6));
    ASSERT_OK(table->AppendBatch(batch));
    ASSERT_OK(table->Flush());

    const auto snap = table->Snapshot();
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    exec::ScanSpec spec;
    spec.Filter("b", {0, 25000}).Aggregate("a", exec::AggregateOp::kSum);
    const auto scanned = exec::Scan(*snap, spec, ctx);
    ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();

    store::RecompressionPolicy policy;
    policy.revisit_sealed = true;
    policy.min_age_chunks = 0;
    const auto recompressed = table->RecompressAll(policy);
    ASSERT_TRUE(recompressed.ok()) << recompressed.status().ToString();

    // DebugString includes the column shapes and the registry exposition.
    const std::string debug = table->DebugString();
    EXPECT_NE(debug.find("column a"), std::string::npos);
    EXPECT_NE(debug.find("scan.queries"), std::string::npos);
  }
  const MetricsSnapshot after = store::Table::MetricsSnapshot();

  const auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  // Pool: seal jobs ran on workers.
  EXPECT_GT(delta("pool.tasks.normal"), 0u);
  // Store: tails sealed; the recompressor examined the sealed chunks.
  EXPECT_GT(delta("store.seal.completed"), 0u);
  EXPECT_GT(delta("store.recompress.swapped") + delta("store.recompress.kept"),
            0u);
  // Analyzer: per-chunk choices were made and priced.
  EXPECT_GT(delta("analyzer.choices"), 0u);
  EXPECT_GT(delta("analyzer.estimated_bytes"), 0u);
  EXPECT_GT(delta("analyzer.actual_bytes"), 0u);
  // Scan: one query with real pruning counters.
  EXPECT_GT(delta("scan.queries"), 0u);
  EXPECT_GT(delta("scan.rows_scanned"), 0u);
  // Fused decode: some path (scalar or avx2) moved.
  uint64_t decode_delta = 0;
  for (const auto& cv : after.counters) {
    if (cv.name.rfind("fused.decode.", 0) == 0) {
      decode_delta += cv.value - before.counter(cv.name);
    }
  }
  EXPECT_GT(decode_delta, 0u);
  // Latency histograms observed the seal and recompress jobs.
  EXPECT_GT(after.histogram("store.seal_ns").count -
                before.histogram("store.seal_ns").count,
            0u);
  EXPECT_GT(after.histogram("store.recompress_ns").count -
                before.histogram("store.recompress_ns").count,
            0u);
}

}  // namespace
}  // namespace recomp
