// Tests for the classic-scheme catalog and the fused decompression kernels.

#include <gtest/gtest.h>

#include <set>

#include "core/catalog.h"
#include "core/fused.h"
#include "test_util.h"

namespace recomp {
namespace {

using testutil::RunsColumn;
using testutil::UniformColumn;

TEST(CatalogTest, AllEntriesValidateAndRoundTrip) {
  Column<uint32_t> col = RunsColumn(10000, 0.05, 21);
  for (const CatalogEntry& entry : ClassicCatalog()) {
    EXPECT_OK(entry.descriptor.Validate()) << entry.name;
    EXPECT_FALSE(entry.description.empty()) << entry.name;
    testutil::ExpectRoundTrip(AnyColumn(col), entry.descriptor);
  }
}

TEST(CatalogTest, LookupByName) {
  auto rle = CatalogLookup("RLE");
  ASSERT_OK(rle.status());
  EXPECT_EQ(rle->ToString(), "RPE{positions:DELTA}");
  EXPECT_FALSE(CatalogLookup("LZ77").ok());
}

TEST(CatalogTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const CatalogEntry& entry : ClassicCatalog()) {
    EXPECT_TRUE(names.insert(entry.name).second)
        << "duplicate: " << entry.name;
  }
}

TEST(CatalogTest, ForExpandsToThePaperDecomposition) {
  EXPECT_EQ(MakeFor(128, 7).ToString(),
            "MODELED(STEP(128)){residual:NS(7)}");
  EXPECT_EQ(MakePfor(64).ToString(),
            "MODELED(STEP(64)){residual:PATCHED{base:NS}}");
  EXPECT_EQ(MakeLfor(32).ToString(), "MODELED(PLIN(32)){residual:NS}");
}

TEST(FusedTest, ClassifiesCatalogShapes) {
  Column<uint32_t> col = RunsColumn(5000, 0.05, 22);

  auto rle = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(rle.status());
  EXPECT_EQ(ClassifyFusedShape(rle->root()), FusedShape::kRle);

  auto for_c = Compress(AnyColumn(col), MakeFor(128));
  ASSERT_OK(for_c.status());
  EXPECT_EQ(ClassifyFusedShape(for_c->root()), FusedShape::kFor);

  auto delta = Compress(AnyColumn(col), MakeDeltaNs());
  ASSERT_OK(delta.status());
  EXPECT_EQ(ClassifyFusedShape(delta->root()), FusedShape::kDeltaZigZagNs);

  auto dict = Compress(AnyColumn(col), MakeDictNs());
  ASSERT_OK(dict.status());
  EXPECT_EQ(ClassifyFusedShape(dict->root()), FusedShape::kGeneric);
}

TEST(FusedTest, FusedAgreesWithReferenceEverywhere) {
  Column<uint32_t> runs = RunsColumn(30000, 0.02, 23);
  Column<uint32_t> uniform = UniformColumn<uint32_t>(30000, 1 << 20, 24);
  for (const CatalogEntry& entry : ClassicCatalog()) {
    for (const Column<uint32_t>* col : {&runs, &uniform}) {
      auto compressed = Compress(AnyColumn(*col), entry.descriptor);
      ASSERT_OK(compressed.status()) << entry.name;
      auto fused = FusedDecompress(*compressed);
      auto reference = Decompress(*compressed);
      ASSERT_OK(fused.status()) << entry.name;
      ASSERT_OK(reference.status()) << entry.name;
      EXPECT_TRUE(*fused == *reference) << entry.name;
    }
  }
}

TEST(FusedTest, FusedHandlesUint64AndRaggedRuns) {
  Column<uint64_t> col;
  uint64_t v = uint64_t{1} << 40;
  for (int i = 0; i < 9999; ++i) {
    if (i % 37 == 0) v += 3;
    col.push_back(v);
  }
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  EXPECT_EQ(ClassifyFusedShape(compressed->root()), FusedShape::kRle);
  auto fused = FusedDecompress(*compressed);
  ASSERT_OK(fused.status());
  EXPECT_EQ(fused->As<uint64_t>(), col);
}

TEST(FusedTest, CorruptLengthsDetected) {
  Column<uint32_t> col{1, 1, 2, 2};
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  auto& lengths = compressed->root()
                      .parts.at("positions")
                      .sub->parts.at("deltas")
                      .column->As<uint32_t>();
  lengths[1] = 100;  // Overruns n.
  EXPECT_EQ(FusedDecompress(*compressed).status().code(),
            StatusCode::kCorruption);
  lengths[1] = 1;  // Underfills n.
  EXPECT_EQ(FusedDecompress(*compressed).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace recomp
