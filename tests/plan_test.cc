// Tests for the decompression plan IR: builder output matches the paper's
// Algorithm 1 / Algorithm 2 listings, the executor agrees with the fused
// reference decompression, and the optimizer preserves semantics while
// shrinking plans.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/plan_builder.h"
#include "core/plan_executor.h"
#include "core/plan_optimizer.h"
#include "test_util.h"

namespace recomp {
namespace {

using testutil::RunsColumn;
using testutil::UniformColumn;

std::vector<PlanOpKind> OpSequence(const Plan& plan) {
  std::vector<PlanOpKind> ops;
  for (const auto& node : plan.nodes) ops.push_back(node.op);
  return ops;
}

TEST(PlanBuilderTest, RlePlanIsAlgorithm1) {
  // RLE = RPE{positions: DELTA}. Its plan must contain, in order, the
  // paper's Algorithm 1: PrefixSum (line 1, from the DELTA child), PopBack,
  // Constant, Constant, Scatter, PrefixSum, Gather (lines 3-8; line 2 is
  // the envelope's stored n).
  Column<uint32_t> col = RunsColumn(1000, 0.1, 1);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());

  EXPECT_EQ(OpSequence(*plan),
            (std::vector<PlanOpKind>{
                PlanOpKind::kInput,               // values
                PlanOpKind::kInput,               // lengths (positions/deltas)
                PlanOpKind::kPrefixSumInclusive,  // line 1: run_positions
                PlanOpKind::kPopBack,             // line 3
                PlanOpKind::kConstant,            // line 4: ones
                PlanOpKind::kConstant,            // line 5: zeros
                PlanOpKind::kScatter,             // line 6: pos_delta
                PlanOpKind::kPrefixSumInclusive,  // line 7: positions
                PlanOpKind::kGather,              // line 8
            }));
  EXPECT_EQ(plan->OperatorCount(), 7u);  // Algorithm 1 has 7 operator lines.

  // The listing uses the paper's variable names.
  const std::string listing = plan->ToString();
  EXPECT_NE(listing.find("run_positions"), std::string::npos);
  EXPECT_NE(listing.find("pos_delta"), std::string::npos);
}

TEST(PlanBuilderTest, RpePlanDropsThePrefixSum) {
  // Partial decompression: RPE stores run_positions directly, so its plan
  // is Algorithm 1 minus the first PrefixSum — the paper's §II-A trade.
  Column<uint32_t> col = RunsColumn(1000, 0.1, 2);
  auto rle = Compress(AnyColumn(col), MakeRle());
  auto rpe = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(rle.status());
  ASSERT_OK(rpe.status());
  auto rle_plan = BuildDecompressionPlan(*rle);
  auto rpe_plan = BuildDecompressionPlan(*rpe);
  ASSERT_OK(rle_plan.status());
  ASSERT_OK(rpe_plan.status());
  EXPECT_EQ(rpe_plan->OperatorCount() + 1, rle_plan->OperatorCount());
}

TEST(PlanBuilderTest, ForPlanIsAlgorithm2) {
  // FOR = MODELED(STEP){residual: NS}. Algorithm 2: ones, id (PrefixSum),
  // ells, ÷, Gather, + — with an Unpack ahead for the NS-packed offsets.
  Column<uint32_t> col = UniformColumn<uint32_t>(4096, 1000, 3);
  auto compressed = Compress(AnyColumn(col), MakeFor(128));
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());

  EXPECT_EQ(OpSequence(*plan),
            (std::vector<PlanOpKind>{
                PlanOpKind::kInput,               // packed offsets
                PlanOpKind::kUnpack,              // NS decode
                PlanOpKind::kInput,               // refs
                PlanOpKind::kConstant,            // line 1: ones
                PlanOpKind::kPrefixSumExclusive,  // line 2: id
                PlanOpKind::kConstant,            // line 3: ells
                PlanOpKind::kElementwise,         // line 4: ref_indices
                PlanOpKind::kGather,              // line 5: replicated
                PlanOpKind::kElementwise,         // line 6: +
            }));
  const std::string listing = plan->ToString();
  EXPECT_NE(listing.find("ref_indices"), std::string::npos);
  EXPECT_NE(listing.find("replicated"), std::string::npos);
}

TEST(PlanExecutorTest, AgreesWithReferenceAcrossCatalog) {
  Column<uint32_t> runs = RunsColumn(20000, 0.05, 4);
  Column<uint32_t> uniform = UniformColumn<uint32_t>(20000, 1 << 14, 5);
  for (const CatalogEntry& entry : ClassicCatalog()) {
    for (const Column<uint32_t>* col : {&runs, &uniform}) {
      auto compressed = Compress(AnyColumn(*col), entry.descriptor);
      ASSERT_OK(compressed.status()) << entry.name;
      auto plan = BuildDecompressionPlan(*compressed);
      ASSERT_OK(plan.status()) << entry.name;
      auto via_plan = ExecutePlan(*plan, *compressed);
      ASSERT_OK(via_plan.status())
          << entry.name << "\n" << plan->ToString();
      auto reference = Decompress(*compressed);
      ASSERT_OK(reference.status()) << entry.name;
      EXPECT_TRUE(*via_plan == *reference) << entry.name;
      EXPECT_EQ(via_plan->As<uint32_t>(), *col) << entry.name;
    }
  }
}

TEST(PlanOptimizerTest, PreservesSemantics) {
  Column<uint32_t> col = RunsColumn(30000, 0.02, 6);
  for (const CatalogEntry& entry : ClassicCatalog()) {
    auto compressed = Compress(AnyColumn(col), entry.descriptor);
    ASSERT_OK(compressed.status()) << entry.name;
    auto plan = BuildDecompressionPlan(*compressed);
    ASSERT_OK(plan.status()) << entry.name;
    auto optimized = OptimizePlan(*plan);
    ASSERT_OK(optimized.status()) << entry.name;
    EXPECT_LE(optimized->nodes.size(), plan->nodes.size()) << entry.name;
    auto a = ExecutePlan(*plan, *compressed);
    auto b = ExecutePlan(*optimized, *compressed);
    ASSERT_OK(a.status()) << entry.name;
    ASSERT_OK(b.status()) << entry.name << "\n" << optimized->ToString();
    EXPECT_TRUE(*a == *b) << entry.name;
  }
}

TEST(PlanOptimizerTest, FusesForPlanToReplicate) {
  Column<uint32_t> col = UniformColumn<uint32_t>(4096, 1000, 7);
  auto compressed = Compress(AnyColumn(col), MakeFor(128));
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());
  auto optimized = OptimizePlan(*plan);
  ASSERT_OK(optimized.status());
  // Input, Unpack, Input, Replicate, Add.
  EXPECT_EQ(optimized->nodes.size(), 5u) << optimized->ToString();
  EXPECT_EQ(OpSequence(*optimized),
            (std::vector<PlanOpKind>{
                PlanOpKind::kInput, PlanOpKind::kUnpack, PlanOpKind::kInput,
                PlanOpKind::kReplicate, PlanOpKind::kElementwise}));
}

TEST(PlanOptimizerTest, FusesRleScatterToScatterConst) {
  Column<uint32_t> col = RunsColumn(1000, 0.1, 8);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());
  auto optimized = OptimizePlan(*plan);
  ASSERT_OK(optimized.status());
  bool has_scatter_const = false;
  for (const auto& node : optimized->nodes) {
    has_scatter_const |= node.op == PlanOpKind::kScatterConst;
    EXPECT_NE(node.op, PlanOpKind::kConstant) << optimized->ToString();
  }
  EXPECT_TRUE(has_scatter_const);
}

TEST(PlanTest, ValidateCatchesMalformedPlans) {
  Plan empty;
  EXPECT_FALSE(empty.Validate().ok());

  Plan forward_ref;
  PlanNode node;
  node.op = PlanOpKind::kPopBack;
  node.inputs = {0};  // references itself (index 0 == this node)
  forward_ref.nodes.push_back(node);
  EXPECT_FALSE(forward_ref.Validate().ok());

  Plan no_path;
  PlanNode input;
  input.op = PlanOpKind::kInput;
  no_path.nodes.push_back(input);
  EXPECT_FALSE(no_path.Validate().ok());
}

TEST(PlanExecutorTest, ResolvePartPath) {
  Column<uint32_t> col = RunsColumn(100, 0.3, 9);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  auto direct = ResolvePartPath(compressed->root(), "values");
  ASSERT_OK(direct.status());
  auto nested = ResolvePartPath(compressed->root(), "positions/deltas");
  ASSERT_OK(nested.status());
  EXPECT_FALSE(ResolvePartPath(compressed->root(), "nope").ok());
  EXPECT_FALSE(ResolvePartPath(compressed->root(), "positions").ok());
  EXPECT_FALSE(
      ResolvePartPath(compressed->root(), "values/deeper").ok());
}

TEST(PlanExecutorTest, SignedColumnsThroughPlans) {
  Column<int32_t> col{-5, -5, 17, 17, 17, -1};
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  auto plan = BuildDecompressionPlan(*compressed);
  ASSERT_OK(plan.status());
  auto out = ExecutePlan(*plan, *compressed);
  ASSERT_OK(out.status());
  EXPECT_EQ(out->As<int32_t>(), col);
}

}  // namespace
}  // namespace recomp
