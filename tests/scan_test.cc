// The composable scan (exec/scan.h): multi-column filter → gather →
// aggregate over table snapshots and single chunked columns.
//
// Everything is checked two ways: against a decompress-everything oracle
// (filter the plain rows, gather the plain values, fold plainly), and for
// bit-identical results — positions, values, aggregates, every stats
// counter — across thread counts. Plus the zone-map intersection edge
// cases: a chunk pruned on one column but not another, empty chunks,
// chunks without min/max, and predicates over a live table's stored-plain
// ID tail.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/catalog.h"
#include "core/chunked.h"
#include "core/descriptor.h"
#include "core/pipeline.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/scan.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "store/table.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace recomp {
namespace {

using exec::AggregateOp;
using exec::RangePredicate;
using exec::Scan;
using exec::ScanResult;
using exec::ScanSpec;

constexpr uint64_t kChunk = 1024;

/// A drifting column: runs, then noise, then a sorted stretch.
Column<uint32_t> MixedShapes(uint64_t part, uint64_t seed) {
  Column<uint32_t> out = gen::SortedRuns(part, 40.0, 2, seed);
  Column<uint32_t> noise = gen::Uniform(part, uint64_t{1} << 24, seed + 1);
  out.insert(out.end(), noise.begin(), noise.end());
  for (uint64_t i = 0; i < part; ++i) {
    out.push_back((uint32_t{1} << 25) + static_cast<uint32_t>(3 * i));
  }
  return out;
}

/// The decompress-everything reference: rows passing every predicate.
Column<uint32_t> OracleSelect(
    const std::vector<const Column<uint32_t>*>& columns,
    const std::vector<std::pair<size_t, RangePredicate>>& filters,
    uint64_t rows) {
  Column<uint32_t> out;
  for (uint64_t i = 0; i < rows; ++i) {
    bool pass = true;
    for (const auto& [col, pred] : filters) {
      const uint64_t v = (*columns[col])[i];
      if (v < pred.lo || v > pred.hi) {
        pass = false;
        break;
      }
    }
    if (pass) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

void ExpectFilterStatsIdentical(const exec::ChunkedSelectionStats& a,
                                const exec::ChunkedSelectionStats& b) {
  EXPECT_EQ(a.chunks_total, b.chunks_total);
  EXPECT_EQ(a.chunks_pruned, b.chunks_pruned);
  EXPECT_EQ(a.chunks_full, b.chunks_full);
  EXPECT_EQ(a.chunks_executed, b.chunks_executed);
  EXPECT_EQ(a.values_decoded, b.values_decoded);
  for (int s = 0; s < exec::kNumStrategies; ++s) {
    EXPECT_EQ(a.strategy_chunks[s], b.strategy_chunks[s]) << s;
  }
  ASSERT_EQ(a.per_chunk.size(), b.per_chunk.size());
  for (size_t i = 0; i < a.per_chunk.size(); ++i) {
    EXPECT_EQ(a.per_chunk[i].chunk_index, b.per_chunk[i].chunk_index);
    EXPECT_EQ(static_cast<int>(a.per_chunk[i].stats.strategy),
              static_cast<int>(b.per_chunk[i].stats.strategy));
  }
}

/// Asserts two scan results are bit-identical (the thread-count contract).
void ExpectScansIdentical(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.rows_matched, b.rows_matched);
  EXPECT_EQ(a.positions, b.positions);
  ASSERT_EQ(a.filters.size(), b.filters.size());
  for (size_t f = 0; f < a.filters.size(); ++f) {
    ExpectFilterStatsIdentical(a.filters[f].stats, b.filters[f].stats);
  }
  ASSERT_EQ(a.projections.size(), b.projections.size());
  for (size_t p = 0; p < a.projections.size(); ++p) {
    EXPECT_TRUE(a.projections[p].values == b.projections[p].values);
    EXPECT_EQ(a.projections[p].gather.rows, b.projections[p].gather.rows);
    EXPECT_EQ(a.projections[p].gather.chunks_touched,
              b.projections[p].gather.chunks_touched);
  }
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  for (size_t g = 0; g < a.aggregates.size(); ++g) {
    EXPECT_EQ(a.aggregates[g].value(), b.aggregates[g].value());
    EXPECT_EQ(a.aggregates[g].rows, b.aggregates[g].rows);
    EXPECT_EQ(a.aggregates[g].agg.chunks_pruned, b.aggregates[g].agg.chunks_pruned);
    EXPECT_EQ(a.aggregates[g].agg.chunks_executed,
              b.aggregates[g].agg.chunks_executed);
  }
}

// ---------------------------------------------------------------------------
// Spec validation.
// ---------------------------------------------------------------------------

TEST(ScanTest, EmptySpecRejected) {
  const Column<uint32_t> col = MixedShapes(100, 3);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  const auto result = Scan(*chunked, ScanSpec{});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kInvalidArgument) << result.status().ToString();
}

TEST(ScanTest, SingleColumnScanRejectsNamedColumns) {
  const Column<uint32_t> col = MixedShapes(100, 5);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ScanSpec spec;
  spec.Filter("amount", RangePredicate{});
  const auto result = Scan(*chunked, spec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kKeyError) << result.status().ToString();
}

TEST(ScanTest, UnknownSnapshotColumnRejected) {
  auto table = store::Table::Create({{"a", TypeId::kUInt32, {kChunk}, ""}});
  ASSERT_OK(table.status());
  ASSERT_OK(table->AppendRow({1}));
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  for (ScanSpec spec : {ScanSpec().Filter("nope", RangePredicate{}),
                        ScanSpec().Project({"nope"}),
                        ScanSpec().Aggregate("nope", AggregateOp::kSum)}) {
    const auto result = Scan(*snap, spec);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.status().code() == StatusCode::kKeyError) << result.status().ToString();
  }
}

TEST(ScanTest, LookupErrorsNameTheRoleAndColumn) {
  // A failing multi-column spec must say which reference broke and in what
  // role — "projection column 'gone': …", not a bare "no column named".
  auto table = store::Table::Create({{"a", TypeId::kUInt32, {kChunk}, ""}});
  ASSERT_OK(table.status());
  ASSERT_OK(table->AppendRow({1}));
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  struct Case {
    ScanSpec spec;
    std::string needle;
  };
  const Case cases[] = {
      {ScanSpec().Filter("nope", RangePredicate{}), "filter column 'nope'"},
      {ScanSpec().Project({"gone"}), "projection column 'gone'"},
      {ScanSpec().Aggregate("axed", AggregateOp::kSum),
       "aggregate column 'axed'"},
  };
  for (const Case& c : cases) {
    const auto result = Scan(*snap, c.spec);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kKeyError);
    EXPECT_NE(result.status().message().find(c.needle), std::string::npos)
        << result.status().ToString();
  }

  // Mixed specs report the first failing reference in spec-section order
  // (filters, then projections, then aggregates).
  ScanSpec mixed;
  mixed.Filter("a", RangePredicate{}).Project({"gone"}).Aggregate(
      "axed", AggregateOp::kSum);
  const auto result = Scan(*snap, mixed);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("projection column 'gone'"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ScanTest, EmptyNameErrorsKeepTheLegacyMessages) {
  // The single-column API addresses its column with the empty name; its
  // errors must stay byte-identical to the per-operator free functions'
  // (no "filter column ''" prefix).
  const Column<uint32_t> col = MixedShapes(100, 7);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  const auto result =
      Scan(*chunked, ScanSpec().Filter("missing", RangePredicate{}));
  ASSERT_FALSE(result.ok());
  // A *named* reference on the single-column API is wrapped with its role…
  EXPECT_NE(result.status().message().find("filter column 'missing'"),
            std::string::npos)
      << result.status().ToString();
  // …while empty-name specs never gain a prefix (an empty scan spec is the
  // simplest probe: its message has no column role in it).
  const auto empty = Scan(*chunked, ScanSpec{});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().message().find("column '"), std::string::npos)
      << empty.status().ToString();
}

// ---------------------------------------------------------------------------
// Single-column scans vs the oracle and the legacy wrappers.
// ---------------------------------------------------------------------------

TEST(ScanTest, SingleFilterAgreesWithLegacySelectAndOracle) {
  const Column<uint32_t> col = MixedShapes(2 * kChunk + 77, 11);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ThreadPool pool(4);
  const std::vector<RangePredicate> preds = {
      {0, ~uint64_t{0}},
      {1u << 25, (1u << 25) + 900},
      {5, 1u << 23},
      {~uint64_t{0} - 1, ~uint64_t{0}},
  };
  for (const RangePredicate& pred : preds) {
    ScanSpec spec;
    spec.Filter(pred);
    auto seq = Scan(*chunked, spec);
    ASSERT_OK(seq.status());
    auto par = Scan(*chunked, spec, ExecContext{&pool, 1});
    ASSERT_OK(par.status());
    ExpectScansIdentical(*seq, *par);

    // The legacy overload is a wrapper over this scan: identical output.
    auto legacy = exec::SelectCompressed(*chunked, pred);
    ASSERT_OK(legacy.status());
    EXPECT_EQ(seq->positions, legacy->positions);
    ExpectFilterStatsIdentical(seq->filters[0].stats, legacy->stats);

    // And both equal the plain reference.
    const Column<uint32_t> expected =
        OracleSelect({&col}, {{0, pred}}, col.size());
    EXPECT_EQ(seq->positions, expected);
    EXPECT_EQ(seq->rows_matched, expected.size());
  }
}

TEST(ScanTest, SingleAggregateAgreesWithLegacyAndOracle) {
  const Column<uint32_t> col = MixedShapes(2 * kChunk + 33, 13);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ThreadPool pool(4);
  uint64_t oracle_sum = 0;
  for (const uint32_t v : col) oracle_sum += v;

  ScanSpec spec;
  spec.Aggregate(AggregateOp::kSum)
      .Aggregate(AggregateOp::kMin)
      .Aggregate(AggregateOp::kMax)
      .Aggregate(AggregateOp::kCount);
  auto seq = Scan(*chunked, spec);
  ASSERT_OK(seq.status());
  auto par = Scan(*chunked, spec, ExecContext{&pool, 1});
  ASSERT_OK(par.status());
  ExpectScansIdentical(*seq, *par);

  EXPECT_EQ(seq->aggregates[0].value(), oracle_sum);
  EXPECT_EQ(seq->aggregates[1].value(),
            *std::min_element(col.begin(), col.end()));
  EXPECT_EQ(seq->aggregates[2].value(),
            *std::max_element(col.begin(), col.end()));
  EXPECT_EQ(seq->aggregates[3].value(), col.size());

  auto legacy_sum = exec::SumCompressed(*chunked);
  ASSERT_OK(legacy_sum.status());
  EXPECT_EQ(seq->aggregates[0].value(), legacy_sum->value);
  EXPECT_EQ(seq->aggregates[0].agg.chunks_total, legacy_sum->chunks_total);
  EXPECT_EQ(seq->aggregates[0].agg.chunks_executed,
            legacy_sum->chunks_executed);
  auto legacy_min = exec::MinCompressed(*chunked);
  ASSERT_OK(legacy_min.status());
  EXPECT_EQ(seq->aggregates[1].value(), legacy_min->value);
  EXPECT_EQ(seq->aggregates[1].agg.chunks_pruned, legacy_min->chunks_pruned);
}

TEST(ScanTest, FilteredAggregateAndProjectionMatchOracle) {
  const Column<uint32_t> col = MixedShapes(3 * kChunk, 17);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  const RangePredicate pred{100, 1u << 22};

  ScanSpec spec;
  spec.Filter(pred)
      .Project()
      .Aggregate(AggregateOp::kSum)
      .Aggregate(AggregateOp::kMin)
      .Aggregate(AggregateOp::kCount);
  auto result = Scan(*chunked, spec);
  ASSERT_OK(result.status());

  const Column<uint32_t> expected = OracleSelect({&col}, {{0, pred}},
                                                 col.size());
  ASSERT_EQ(result->positions, expected);
  ASSERT_EQ(result->projections.size(), 1u);
  const Column<uint32_t>& values =
      result->projections[0].values.As<uint32_t>();
  ASSERT_EQ(values.size(), expected.size());
  uint64_t oracle_sum = 0, oracle_min = ~uint64_t{0};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(values[i], col[expected[i]]);
    oracle_sum += col[expected[i]];
    oracle_min = std::min<uint64_t>(oracle_min, col[expected[i]]);
  }
  EXPECT_EQ(result->aggregates[0].value(), oracle_sum);
  EXPECT_EQ(result->aggregates[0].rows, expected.size());
  EXPECT_EQ(result->aggregates[1].value(), oracle_min);
  EXPECT_EQ(result->aggregates[2].value(), expected.size());
  EXPECT_EQ(result->projections[0].gather.rows, expected.size());
  EXPECT_GE(result->projections[0].gather.chunks_touched, 1u);
}

TEST(ScanTest, MinMaxOfEmptySelectionIsZeroRowsNotError) {
  const Column<uint32_t> col = MixedShapes(kChunk, 19);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ScanSpec spec;
  spec.Filter(RangePredicate{~uint64_t{0} - 1, ~uint64_t{0}})
      .Aggregate(AggregateOp::kMin)
      .Aggregate(AggregateOp::kSum);
  auto result = Scan(*chunked, spec);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->rows_matched, 0u);
  EXPECT_EQ(result->aggregates[0].rows, 0u);
  EXPECT_EQ(result->aggregates[0].value(), 0u);
  EXPECT_EQ(result->aggregates[1].value(), 0u);

  // The whole-column min of an empty column still fails (legacy contract).
  ChunkedCompressedColumn empty;
  ScanSpec min_spec;
  min_spec.Aggregate(AggregateOp::kMin);
  EXPECT_FALSE(Scan(empty, min_spec).ok());
}

TEST(ScanTest, LimitTruncatesSelectionButCountsAllMatches) {
  const Column<uint32_t> col = MixedShapes(3 * kChunk, 23);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  const RangePredicate pred{0, 1u << 24};
  const Column<uint32_t> all = OracleSelect({&col}, {{0, pred}}, col.size());
  ASSERT_GT(all.size(), 100u);

  ScanSpec spec;
  spec.Filter(pred).Project().Aggregate(AggregateOp::kSum).Limit(100);
  auto result = Scan(*chunked, spec);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->rows_matched, all.size());
  ASSERT_EQ(result->positions.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(result->positions[i], all[i]);
  EXPECT_EQ(result->projections[0].values.size(), 100u);
  uint64_t oracle_sum = 0;
  for (size_t i = 0; i < 100; ++i) oracle_sum += col[all[i]];
  EXPECT_EQ(result->aggregates[0].value(), oracle_sum);
  EXPECT_EQ(result->aggregates[0].rows, 100u);

  // Filterless limit: the first n rows.
  ScanSpec head;
  head.Project().Limit(7);
  auto prefix = Scan(*chunked, head);
  ASSERT_OK(prefix.status());
  const Column<uint32_t>& head_values =
      prefix->projections[0].values.As<uint32_t>();
  ASSERT_EQ(head_values.size(), 7u);
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(head_values[i], col[i]);
}

TEST(ScanTest, ProjectionKeepsNativeType) {
  const Column<uint64_t> col = gen::Uniform64(2 * kChunk, uint64_t{1} << 40, 29);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ScanSpec spec;
  spec.Filter(RangePredicate{0, uint64_t{1} << 39}).Project();
  auto result = Scan(*chunked, spec);
  ASSERT_OK(result.status());
  ASSERT_EQ(result->projections[0].values.type(), TypeId::kUInt64);
  const Column<uint64_t>& values =
      result->projections[0].values.As<uint64_t>();
  ASSERT_EQ(values.size(), result->positions.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], col[result->positions[i]]);
  }
}

// ---------------------------------------------------------------------------
// Multi-column scans over table snapshots.
// ---------------------------------------------------------------------------

/// A three-column table: "date" sorted runs (RLE-friendly, prunable),
/// "amount" noise, "qty" small values; appended in one batch.
struct TestTable {
  store::Table table;
  Column<uint32_t> date, amount, qty;
};

TestTable MakeTestTable(uint64_t rows, uint64_t chunk_rows, ExecContext ctx,
                        uint64_t seed = 41) {
  auto table = store::Table::Create(
      {
          {"date", TypeId::kUInt32, {chunk_rows}, ""},
          {"amount", TypeId::kUInt32, {chunk_rows}, ""},
          {"qty", TypeId::kUInt32, {chunk_rows}, ""},
      },
      ctx);
  EXPECT_OK(table.status());
  TestTable t{std::move(*table), gen::SortedRuns(rows, 30.0, 2, seed),
              gen::Uniform(rows, uint64_t{1} << 20, seed + 1),
              gen::Uniform(rows, 50, seed + 2)};
  EXPECT_OK(t.table.AppendBatch(
      {AnyColumn(t.date), AnyColumn(t.amount), AnyColumn(t.qty)}));
  return t;
}

TEST(ScanTest, MultiColumnFilterGatherAggregateMatchesOracle) {
  ThreadPool pool(4);
  const ExecContext ctx{&pool, 1};
  TestTable t = MakeTestTable(5 * kChunk + 123, kChunk, ctx);
  ASSERT_OK(t.table.Flush());
  auto snap = t.table.Snapshot();
  ASSERT_OK(snap.status());

  const uint64_t date_lo = t.date[t.date.size() / 4];
  const uint64_t date_hi = t.date[t.date.size() / 2];
  const RangePredicate date_pred{date_lo, date_hi};
  const RangePredicate amount_pred{0, 1u << 19};

  ScanSpec spec;
  spec.Filter("date", date_pred)
      .Filter("amount", amount_pred)
      .Project({"qty", "amount"})
      .Aggregate("qty", AggregateOp::kSum)
      .Aggregate("amount", AggregateOp::kMax)
      .Aggregate("date", AggregateOp::kCount);

  const Column<uint32_t> expected =
      OracleSelect({&t.date, &t.amount, &t.qty},
                   {{0, date_pred}, {1, amount_pred}}, snap->rows());

  // Sequential and every thread count agree with each other and the oracle.
  auto seq = Scan(*snap, spec);
  ASSERT_OK(seq.status());
  for (const uint64_t threads : {1ull, 2ull, 8ull}) {
    ThreadPool scan_pool(threads);
    auto par = Scan(*snap, spec, ExecContext{&scan_pool, 1});
    ASSERT_OK(par.status());
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ExpectScansIdentical(*seq, *par);
  }

  ASSERT_EQ(seq->positions, expected);
  EXPECT_EQ(seq->rows_matched, expected.size());
  const Column<uint32_t>& qty = seq->projections[0].values.As<uint32_t>();
  const Column<uint32_t>& amount = seq->projections[1].values.As<uint32_t>();
  ASSERT_EQ(qty.size(), expected.size());
  uint64_t qty_sum = 0, amount_max = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(qty[i], t.qty[expected[i]]);
    EXPECT_EQ(amount[i], t.amount[expected[i]]);
    qty_sum += t.qty[expected[i]];
    amount_max = std::max<uint64_t>(amount_max, t.amount[expected[i]]);
  }
  EXPECT_EQ(seq->aggregates[0].value(), qty_sum);
  EXPECT_EQ(seq->aggregates[1].value(), amount_max);
  EXPECT_EQ(seq->aggregates[2].value(), expected.size());
  EXPECT_EQ(seq->aggregates[0].rows, expected.size());
}

TEST(ScanTest, MisalignedChunkBoundariesRefineIntoRanges) {
  // Different chunk_rows per column: the scan partitions rows by the union
  // of both filter columns' chunk boundaries.
  ThreadPool pool(3);
  const ExecContext ctx{&pool, 1};
  auto table = store::Table::Create(
      {
          {"a", TypeId::kUInt32, {kChunk}, ""},
          {"b", TypeId::kUInt32, {kChunk + 300}, ""},
      },
      ctx);
  ASSERT_OK(table.status());
  const uint64_t rows = 4 * kChunk + 99;
  const Column<uint32_t> a = gen::SortedRuns(rows, 25.0, 2, 57);
  const Column<uint32_t> b = gen::Uniform(rows, uint64_t{1} << 16, 58);
  ASSERT_OK(table->AppendBatch({AnyColumn(a), AnyColumn(b)}));
  ASSERT_OK(table->Flush());
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  const RangePredicate pa{a[rows / 3], a[2 * rows / 3]};
  const RangePredicate pb{100, 1u << 15};
  ScanSpec spec;
  spec.Filter("a", pa).Filter("b", pb).Project({"b"});
  auto seq = Scan(*snap, spec);
  ASSERT_OK(seq.status());
  auto par = Scan(*snap, spec, ctx);
  ASSERT_OK(par.status());
  ExpectScansIdentical(*seq, *par);

  const Column<uint32_t> expected =
      OracleSelect({&a, &b}, {{0, pa}, {1, pb}}, rows);
  ASSERT_EQ(seq->positions, expected);
  const Column<uint32_t>& bv = seq->projections[0].values.As<uint32_t>();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(bv[i], b[expected[i]]);
  }

  // Even though chunks straddle ranges, each chunk executes (and counts)
  // at most once per filter.
  for (const exec::ScanFilterStats& f : seq->filters) {
    EXPECT_LE(f.stats.chunks_pruned + f.stats.chunks_full +
                  f.stats.chunks_executed,
              f.stats.chunks_total);
    EXPECT_EQ(f.stats.chunks_executed, f.stats.per_chunk.size());
  }
}

// ---------------------------------------------------------------------------
// Zone-map intersection edge cases.
// ---------------------------------------------------------------------------

TEST(ScanTest, ChunkPrunedOnOneColumnSkipsTheOther) {
  // "key" holds the chunk index as a constant per chunk: a point predicate
  // prunes every chunk but one. "payload" is noise whose zone map overlaps
  // the predicate everywhere — standalone it would execute every chunk, but
  // the intersected scan must only touch it inside the surviving chunk.
  ThreadPool pool(2);
  const ExecContext ctx{&pool, 1};
  constexpr uint64_t kChunks = 6;
  auto table = store::Table::Create(
      {
          {"key", TypeId::kUInt32, {kChunk}, ""},
          {"payload", TypeId::kUInt32, {kChunk}, ""},
      },
      ctx);
  ASSERT_OK(table.status());
  Column<uint32_t> key, payload;
  for (uint64_t c = 0; c < kChunks; ++c) {
    for (uint64_t i = 0; i < kChunk; ++i) {
      key.push_back(static_cast<uint32_t>(c));
      payload.push_back(static_cast<uint32_t>((i * 37) % 1000));
    }
  }
  ASSERT_OK(table->AppendBatch({AnyColumn(key), AnyColumn(payload)}));
  ASSERT_OK(table->Flush());
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  ScanSpec spec;
  spec.Filter("key", RangePredicate{2, 2})
      .Filter("payload", RangePredicate{0, 500});
  auto result = Scan(*snap, spec, ctx);
  ASSERT_OK(result.status());

  // The key filter prunes 5 of 6 chunks and is contained in the sixth.
  EXPECT_EQ(result->filters[0].stats.chunks_total, kChunks);
  EXPECT_EQ(result->filters[0].stats.chunks_pruned, kChunks - 1);
  EXPECT_EQ(result->filters[0].stats.chunks_full, 1u);
  // The payload filter only ever ran inside the surviving chunk.
  EXPECT_EQ(result->filters[1].stats.chunks_executed, 1u);
  EXPECT_EQ(result->filters[1].stats.chunks_pruned, 0u);
  EXPECT_LE(result->filters[1].stats.values_decoded, kChunk);

  // Standalone, the payload filter would execute every chunk.
  auto standalone = exec::SelectCompressed(
      snap->column(1).chunked(), RangePredicate{0, 500}, ctx);
  ASSERT_OK(standalone.status());
  EXPECT_EQ(standalone->stats.chunks_executed, kChunks);

  const Column<uint32_t> expected = OracleSelect(
      {&key, &payload}, {{0, {2, 2}}, {1, {0, 500}}}, key.size());
  EXPECT_EQ(result->positions, expected);
}

/// A hand-built chunked column with irregularities: a normal chunk, an
/// empty chunk, a chunk without min/max, then another normal chunk.
ChunkedCompressedColumn IrregularChunks(const Column<uint32_t>& a,
                                        const Column<uint32_t>& b,
                                        const Column<uint32_t>& c) {
  ChunkedCompressedColumn out;
  uint64_t row = 0;
  auto append = [&](const Column<uint32_t>& values, bool with_minmax) {
    CompressedChunk chunk;
    chunk.zone.row_begin = row;
    chunk.zone.row_count = values.size();
    if (with_minmax && !values.empty()) {
      chunk.zone.has_minmax = true;
      chunk.zone.min = *std::min_element(values.begin(), values.end());
      chunk.zone.max = *std::max_element(values.begin(), values.end());
    }
    auto compressed = Compress(AnyColumn(values), Ns());
    EXPECT_OK(compressed.status());
    chunk.column = std::move(*compressed);
    EXPECT_OK(out.AppendChunk(std::move(chunk)));
    row += values.size();
  };
  append(a, true);
  append({}, true);
  append(b, false);
  append(c, true);
  return out;
}

TEST(ScanTest, EmptyAndMinMaxlessChunksUnderConjunctiveFilters) {
  Column<uint32_t> a, b, c;
  for (uint32_t i = 0; i < 500; ++i) a.push_back(100 + i % 50);
  for (uint32_t i = 0; i < 300; ++i) b.push_back(10000 + (i * 37) % 2000);
  for (uint32_t i = 0; i < 400; ++i) c.push_back(50000 + i);
  Column<uint32_t> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());
  const ChunkedCompressedColumn chunked = IrregularChunks(a, b, c);
  ASSERT_EQ(chunked.num_chunks(), 4u);

  ThreadPool pool(3);
  // Two conjunctive predicates on the same column: the minmax-less chunk is
  // never pruned (it must execute for both), the empty chunk is invisible.
  ScanSpec spec;
  spec.Filter(RangePredicate{100, 60000})
      .Filter(RangePredicate{120, 50100})
      .Project();
  auto seq = Scan(chunked, spec);
  ASSERT_OK(seq.status());
  auto par = Scan(chunked, spec, ExecContext{&pool, 1});
  ASSERT_OK(par.status());
  ExpectScansIdentical(*seq, *par);

  const Column<uint32_t> expected = OracleSelect(
      {&all, &all}, {{0, {100, 60000}}, {1, {120, 50100}}}, all.size());
  EXPECT_EQ(seq->positions, expected);
  const Column<uint32_t>& values = seq->projections[0].values.As<uint32_t>();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(values[i], all[expected[i]]);
  }

  // The minmax-less chunk executes under both filters even when a predicate
  // could never match it; chunks with zone maps prune normally.
  ScanSpec nothing;
  nothing.Filter(RangePredicate{1, 2}).Filter(RangePredicate{3, 4});
  auto none = Scan(chunked, nothing);
  ASSERT_OK(none.status());
  EXPECT_EQ(none->rows_matched, 0u);
  // Both predicates prune the zone-mapped chunks; only the minmax-less
  // chunk must execute — once per filter, never once per range.
  EXPECT_EQ(none->filters[0].stats.chunks_pruned, 2u);
  EXPECT_EQ(none->filters[0].stats.chunks_executed, 1u);
  EXPECT_EQ(none->filters[1].stats.chunks_pruned, 2u);
  EXPECT_EQ(none->filters[1].stats.chunks_executed, 1u);
}

TEST(ScanTest, PredicateOverStoredPlainIdTailUsesPlainScan) {
  // A live table whose tail has not sealed: the tail chunk is served as a
  // stored-plain ID envelope, and a predicate overlapping it must run the
  // kPlainScan fast path rather than decompressing.
  auto table = store::Table::Create(
      {
          {"k", TypeId::kUInt32, {kChunk}, ""},
          {"v", TypeId::kUInt32, {kChunk}, ""},
      },
      ExecContext{});
  ASSERT_OK(table.status());
  const uint64_t rows = kChunk + kChunk / 2;  // One sealed chunk + half tail.
  Column<uint32_t> k, v;
  for (uint64_t i = 0; i < rows; ++i) {
    k.push_back(static_cast<uint32_t>(i));
    v.push_back(static_cast<uint32_t>(7 * i % 4096));
  }
  ASSERT_OK(table->AppendBatch({AnyColumn(k), AnyColumn(v)}));
  auto snap = table->Snapshot();  // No flush: the tail stays plain.
  ASSERT_OK(snap.status());

  // The predicate selects rows only inside the tail chunk.
  ScanSpec spec;
  spec.Filter("k", RangePredicate{kChunk + 10, rows - 10})
      .Project({"v"})
      .Aggregate("v", AggregateOp::kSum);
  auto result = Scan(*snap, spec);
  ASSERT_OK(result.status());

  const Column<uint32_t> expected =
      OracleSelect({&k}, {{0, {kChunk + 10, rows - 10}}}, rows);
  ASSERT_EQ(result->positions, expected);
  // The sealed chunk was pruned via its zone map; the tail ran kPlainScan.
  EXPECT_EQ(result->filters[0].stats.chunks_pruned, 1u);
  EXPECT_EQ(result->filters[0].stats.chunks_executed, 1u);
  EXPECT_EQ(result->filters[0]
                .stats.strategy_chunks[static_cast<int>(
                    exec::Strategy::kPlainScan)],
            1u);
  // The gather over v touched the plain tail in place too.
  EXPECT_GE(result->projections[0]
                .gather.strategy_rows[static_cast<int>(
                    exec::Strategy::kPlainScan)],
            1u);
  uint64_t oracle_sum = 0;
  for (const uint32_t p : expected) oracle_sum += v[p];
  EXPECT_EQ(result->aggregates[0].value(), oracle_sum);
}

// ---------------------------------------------------------------------------
// Fuzz: random multi-column scans vs the decompress-everything oracle.
// ---------------------------------------------------------------------------

TEST(ScanTest, FuzzAgainstOracleAcrossThreadCounts) {
  Rng rng(20260727);
  for (int round = 0; round < 12; ++round) {
    const uint64_t rows = 500 + rng.Below(4000);
    const uint64_t chunk_a = 200 + rng.Below(800);
    const uint64_t chunk_b = 200 + rng.Below(800);
    auto table = store::Table::Create(
        {
            {"a", TypeId::kUInt32, {chunk_a}, ""},
            {"b", TypeId::kUInt32, {chunk_b}, ""},
        },
        ExecContext{});
    ASSERT_OK(table.status());
    const Column<uint32_t> a =
        rng.Bernoulli(0.5) ? gen::SortedRuns(rows, 20.0, 2, 900 + round)
                           : gen::Uniform(rows, 1u << 16, 900 + round);
    const Column<uint32_t> b = gen::Uniform(rows, 1u << 12, 950 + round);
    ASSERT_OK(table->AppendBatch({AnyColumn(a), AnyColumn(b)}));
    if (rng.Bernoulli(0.7)) ASSERT_OK(table->Flush());  // Else: plain tails.
    auto snap = table->Snapshot();
    ASSERT_OK(snap.status());

    const uint64_t a_lo = rng.Below(1u << 16);
    const uint64_t b_lo = rng.Below(1u << 12);
    const RangePredicate pa{a_lo, a_lo + rng.Below(1u << 15)};
    const RangePredicate pb{b_lo, b_lo + rng.Below(1u << 11)};
    ScanSpec spec;
    spec.Filter("a", pa).Filter("b", pb).Project({"b"}).Aggregate(
        "b", AggregateOp::kSum);
    if (rng.Bernoulli(0.3)) spec.Limit(rng.Below(200));

    auto seq = Scan(*snap, spec);
    ASSERT_OK(seq.status());
    for (const uint64_t threads : {2ull, 5ull}) {
      ThreadPool pool(threads);
      auto par = Scan(*snap, spec, ExecContext{&pool, 1 + rng.Below(3)});
      ASSERT_OK(par.status());
      SCOPED_TRACE(testing::Message()
                   << "round=" << round << " threads=" << threads);
      ExpectScansIdentical(*seq, *par);
    }

    Column<uint32_t> expected =
        OracleSelect({&a, &b}, {{0, pa}, {1, pb}}, rows);
    const uint64_t matched = expected.size();
    if (expected.size() > spec.limit()) expected.resize(spec.limit());
    SCOPED_TRACE(testing::Message() << "round=" << round);
    ASSERT_EQ(seq->positions, expected);
    EXPECT_EQ(seq->rows_matched, matched);
    const Column<uint32_t>& bv = seq->projections[0].values.As<uint32_t>();
    uint64_t oracle_sum = 0;
    ASSERT_EQ(bv.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(bv[i], b[expected[i]]);
      oracle_sum += b[expected[i]];
    }
    EXPECT_EQ(seq->aggregates[0].value(), oracle_sum);
  }
}

// ---------------------------------------------------------------------------
// Zero-filter specs and Limit × Aggregate interaction.
// ---------------------------------------------------------------------------

TEST(ScanTest, ZeroFilterPureProjectionIsTheFullColumn) {
  // A projection-only spec is a full scan: every row gathers in order,
  // rows_matched covers the column, and positions stay empty (the implicit
  // everything-selection is never materialized). Checked over a sealed
  // column and over a live snapshot whose tail is a stored-plain ID chunk.
  const Column<uint32_t> col = MixedShapes(kChunk + 150, 47);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ThreadPool pool(4);

  ScanSpec spec;
  spec.Project();
  auto seq = Scan(*chunked, spec);
  ASSERT_OK(seq.status());
  auto par = Scan(*chunked, spec, ExecContext{&pool, 1});
  ASSERT_OK(par.status());
  ExpectScansIdentical(*seq, *par);

  EXPECT_EQ(seq->rows_scanned, col.size());
  EXPECT_EQ(seq->rows_matched, col.size());
  EXPECT_TRUE(seq->positions.empty());
  ASSERT_EQ(seq->projections.size(), 1u);
  EXPECT_TRUE(seq->projections[0].values == AnyColumn(col));
  EXPECT_EQ(seq->projections[0].gather.rows, col.size());

  // Live table: the tail rows come off the kPlainScan point-access path.
  auto table = store::Table::Create({{"x", TypeId::kUInt32, {kChunk}, ""}});
  ASSERT_OK(table.status());
  ASSERT_OK(table->AppendBatch({AnyColumn(col)}));  // Tail stays unsealed.
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  ScanSpec named;
  named.Project({"x"});
  auto live = Scan(*snap, named);
  ASSERT_OK(live.status());
  EXPECT_TRUE(live->projections[0].values == AnyColumn(col));
  EXPECT_GT(live->projections[0]
                .gather.strategy_rows[static_cast<int>(exec::Strategy::kPlainScan)],
            0u);
}

TEST(ScanTest, ZeroFilterProjectionDoesNotDisturbAggregatePushdown) {
  // Projection and aggregate in one filterless, unlimited spec: the
  // aggregate still pushes down per chunk (counters identical to the
  // standalone chunked aggregate), while the projection gathers every row.
  const Column<uint32_t> col = MixedShapes(2 * kChunk + 77, 53);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());

  ScanSpec spec;
  spec.Project().Aggregate(AggregateOp::kSum).Aggregate(AggregateOp::kMin);
  auto result = Scan(*chunked, spec);
  ASSERT_OK(result.status());
  EXPECT_TRUE(result->projections[0].values == AnyColumn(col));

  auto legacy_sum = exec::SumCompressed(*chunked);
  ASSERT_OK(legacy_sum.status());
  EXPECT_EQ(result->aggregates[0].value(), legacy_sum->value);
  EXPECT_EQ(result->aggregates[0].rows, col.size());
  EXPECT_EQ(result->aggregates[0].agg.chunks_total, legacy_sum->chunks_total);
  EXPECT_EQ(result->aggregates[0].agg.chunks_executed,
            legacy_sum->chunks_executed);
  EXPECT_EQ(result->aggregates[0].agg.chunks_pruned, legacy_sum->chunks_pruned);
  auto legacy_min = exec::MinCompressed(*chunked);
  ASSERT_OK(legacy_min.status());
  EXPECT_EQ(result->aggregates[1].value(), legacy_min->value);
  EXPECT_EQ(result->aggregates[1].agg.chunks_pruned, legacy_min->chunks_pruned);
}

TEST(ScanTest, LimitSwitchesAggregatesFromPushdownToGatheredPrefix) {
  // Filterless aggregates interact with Limit by folding over exactly the
  // first `limit` rows — the documented "aggregates see only those rows"
  // semantics — which forces the gather path instead of chunk pushdown.
  const Column<uint32_t> col = MixedShapes(2 * kChunk, 59);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  ThreadPool pool(4);
  constexpr uint64_t kTake = 700;

  ScanSpec spec;
  spec.Aggregate(AggregateOp::kSum)
      .Aggregate(AggregateOp::kMin)
      .Aggregate(AggregateOp::kMax)
      .Aggregate(AggregateOp::kCount)
      .Limit(kTake);
  auto seq = Scan(*chunked, spec);
  ASSERT_OK(seq.status());
  auto par = Scan(*chunked, spec, ExecContext{&pool, 1});
  ASSERT_OK(par.status());
  ExpectScansIdentical(*seq, *par);

  uint64_t sum = 0, lo = ~uint64_t{0}, hi = 0;
  for (uint64_t i = 0; i < kTake; ++i) {
    sum += col[i];
    lo = std::min<uint64_t>(lo, col[i]);
    hi = std::max<uint64_t>(hi, col[i]);
  }
  EXPECT_EQ(seq->aggregates[0].value(), sum);
  EXPECT_EQ(seq->aggregates[1].value(), lo);
  EXPECT_EQ(seq->aggregates[2].value(), hi);
  EXPECT_EQ(seq->aggregates[3].value(), kTake);
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(seq->aggregates[g].rows, kTake);
    // No pushdown: the fold ran over gathered values, not chunk payloads.
    EXPECT_EQ(seq->aggregates[g].agg.chunks_executed, 0u);
    EXPECT_EQ(seq->aggregates[g].agg.chunks_pruned, 0u);
    EXPECT_EQ(seq->aggregates[g].gather.rows, kTake);
  }

  // A limit covering the whole column is no limit at all: back to the
  // pushdown path, bit-identical to the unlimited spec.
  ScanSpec covering;
  covering.Aggregate(AggregateOp::kSum).Limit(col.size());
  auto whole = Scan(*chunked, covering);
  ASSERT_OK(whole.status());
  ScanSpec unlimited;
  unlimited.Aggregate(AggregateOp::kSum);
  auto reference = Scan(*chunked, unlimited);
  ASSERT_OK(reference.status());
  ExpectScansIdentical(*whole, *reference);
  EXPECT_GT(whole->aggregates[0].agg.chunks_executed, 0u);
}

TEST(ScanTest, LimitZeroYieldsEmptyAggregatesNotErrors) {
  // Limit(0) is a valid answer, not an error — even for min/max, which
  // fail on an empty *column* but not on an empty *selection*.
  const Column<uint32_t> col = MixedShapes(kChunk, 61);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());

  for (const bool filtered : {false, true}) {
    ScanSpec spec;
    if (filtered) spec.Filter(RangePredicate{0, ~uint64_t{0}});
    spec.Project()
        .Aggregate(AggregateOp::kSum)
        .Aggregate(AggregateOp::kMin)
        .Aggregate(AggregateOp::kCount)
        .Limit(0);
    auto result = Scan(*chunked, spec);
    ASSERT_OK(result.status()) << "filtered=" << filtered;
    EXPECT_TRUE(result->positions.empty());
    EXPECT_EQ(result->projections[0].values.size(), 0u);
    EXPECT_EQ(result->aggregates[0].value(), 0u);
    EXPECT_EQ(result->aggregates[0].rows, 0u);
    EXPECT_EQ(result->aggregates[1].value(), 0u);  // Empty-selection min.
    EXPECT_EQ(result->aggregates[1].rows, 0u);
    EXPECT_EQ(result->aggregates[2].value(), 0u);
    // The match count is unaffected by the limit.
    EXPECT_EQ(result->rows_matched, col.size());
  }
}

TEST(ScanTest, FilteredLimitFoldsAggregatesOverTheLimitedPrefix) {
  // Filter × Limit × min/max/count: the aggregates fold over the first
  // `limit` *matching* rows in row order (not over all matches).
  const Column<uint32_t> col = MixedShapes(3 * kChunk, 67);
  auto chunked = CompressChunkedAuto(AnyColumn(col), {kChunk});
  ASSERT_OK(chunked.status());
  const RangePredicate pred{0, 1u << 24};
  const Column<uint32_t> all = OracleSelect({&col}, {{0, pred}}, col.size());
  constexpr uint64_t kTake = 150;
  ASSERT_GT(all.size(), kTake);

  ScanSpec spec;
  spec.Filter(pred)
      .Aggregate(AggregateOp::kMin)
      .Aggregate(AggregateOp::kMax)
      .Aggregate(AggregateOp::kCount)
      .Limit(kTake);
  auto result = Scan(*chunked, spec);
  ASSERT_OK(result.status());
  uint64_t lo = ~uint64_t{0}, hi = 0;
  for (uint64_t i = 0; i < kTake; ++i) {
    lo = std::min<uint64_t>(lo, col[all[i]]);
    hi = std::max<uint64_t>(hi, col[all[i]]);
  }
  EXPECT_EQ(result->rows_matched, all.size());
  EXPECT_EQ(result->aggregates[0].value(), lo);
  EXPECT_EQ(result->aggregates[1].value(), hi);
  EXPECT_EQ(result->aggregates[2].value(), kTake);
  for (int g = 0; g < 3; ++g) EXPECT_EQ(result->aggregates[g].rows, kTake);
}

}  // namespace
}  // namespace recomp
