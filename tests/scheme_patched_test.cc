// Tests for the PATCHED combinator — the paper's L0-metric decomposition
// ("really a step function, but with the occasional divergent element").

#include <gtest/gtest.h>

#include "schemes/scheme.h"
#include "test_util.h"
#include "util/bits.h"
#include "util/random.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;

/// Mostly-narrow data with a fraction of wide outliers.
Column<uint32_t> OutlierColumn(uint64_t n, int base_bits, double fraction,
                               uint64_t seed) {
  Rng rng(seed);
  Column<uint32_t> col;
  col.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(fraction)) {
      col.push_back(static_cast<uint32_t>(rng.Below(1u << 30)) | (1u << 29));
    } else {
      col.push_back(static_cast<uint32_t>(rng.Below(1u << base_bits)));
    }
  }
  return col;
}

TEST(PatchedSchemeTest, SplitsBaseAndPatches) {
  Column<uint32_t> col{1, 2, 1000, 3};
  auto compressed = Compress(AnyColumn(col), Patched(2));
  ASSERT_OK(compressed.status());
  EXPECT_EQ(compressed->root().parts.at("base").column->As<uint32_t>(),
            (Column<uint32_t>{1, 2, 1000 & 3, 3}));
  EXPECT_EQ(
      compressed->root().parts.at("patch_positions").column->As<uint32_t>(),
      (Column<uint32_t>{2}));
  EXPECT_EQ(compressed->root().parts.at("patch_values").column->As<uint32_t>(),
            (Column<uint32_t>{1000}));
  auto back = Decompress(*compressed);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(PatchedSchemeTest, NoOutliersNoPatches) {
  Column<uint32_t> col{1, 2, 3};
  auto compressed = Compress(AnyColumn(col), Patched(2));
  ASSERT_OK(compressed.status());
  EXPECT_TRUE(
      compressed->root().parts.at("patch_positions").column->size() == 0);
}

TEST(PatchedSchemeTest, AutoWidthMinimizesFootprint) {
  // 99% of values fit in 8 bits; 1% need 30. Auto width should land near 8,
  // not 30.
  Column<uint32_t> col = OutlierColumn(100000, 8, 0.01, 71);
  auto compressed =
      Compress(AnyColumn(col), Patched().With("base", Ns()));
  ASSERT_OK(compressed.status());
  const int width = compressed->Descriptor().params.width;
  EXPECT_GE(width, 6);
  EXPECT_LE(width, 12);
  auto back = Decompress(*compressed);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(PatchedSchemeTest, PatchedNsBeatsPlainNsWithOutliers) {
  Column<uint32_t> col = OutlierColumn(65536, 6, 0.005, 72);
  auto plain = Compress(AnyColumn(col), Ns());
  auto patched = Compress(AnyColumn(col), Patched().With("base", Ns()));
  ASSERT_OK(plain.status());
  ASSERT_OK(patched.status());
  EXPECT_LT(patched->PayloadBytes(), plain->PayloadBytes());
}

TEST(PatchedSchemeTest, AllOutliersDegradesGracefully) {
  // With every value wide, the optimum is width == value bits (no patches).
  Column<uint32_t> col = OutlierColumn(10000, 6, 1.0, 73);
  auto compressed = Compress(AnyColumn(col), Patched().With("base", Ns()));
  ASSERT_OK(compressed.status());
  EXPECT_EQ(
      compressed->root().parts.at("patch_positions").column->size(), 0u);
  auto back = Decompress(*compressed);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(PatchedSchemeTest, RoundTripsEdgeCases) {
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}), Patched(4));
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{0}), Patched(4));
  ExpectRoundTrip(AnyColumn(Column<uint64_t>{~uint64_t{0}, 0}), Patched(4));
}

TEST(PatchedSchemeTest, TamperedPatchDetected) {
  Column<uint32_t> col{1, 1000, 2};
  auto compressed = Compress(AnyColumn(col), Patched(2));
  ASSERT_OK(compressed.status());
  auto& values =
      compressed->root().parts.at("patch_values").column->As<uint32_t>();
  values[0] ^= 1;  // low bits no longer match the base column
  EXPECT_EQ(Decompress(*compressed).status().code(), StatusCode::kCorruption);
}

TEST(PatchedSchemeTest, InsidePforComposition) {
  // PFOR = MODELED(STEP) with a patched, packed residual.
  Column<uint32_t> col = OutlierColumn(32768, 5, 0.01, 74);
  for (uint64_t i = 0; i < col.size(); ++i) col[i] += 50000;  // add a frame
  SchemeDescriptor pfor =
      Modeled(Step(1024)).With("residual", Patched().With("base", Ns()));
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), pfor);
  EXPECT_GT(c.Ratio(), 3.0);
}

}  // namespace
}  // namespace recomp
