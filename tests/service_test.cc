// QueryService: admission control, deadlines, shared-scan batching, and the
// recycled-intermediate caches (selection vectors, decoded chunks).
//
// The load-bearing property is semantic: every batched result must be
// bit-identical (exec::ScanOutputsEqual) to running the same spec through
// solo exec::Scan against the same snapshot — batching is an execution
// strategy, never a semantic change. Around that: admission refusals carry
// the right status codes, queued queries expire against their deadlines,
// version bumps invalidate the selection-vector cache, and the sharing
// ratio actually materializes (more chunk evaluations than decodes).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "exec/scan.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "service/selection_cache.h"
#include "service/shared_scan.h"
#include "store/table.h"
#include "test_util.h"
#include "util/macros.h"
#include "util/random.h"

namespace recomp {
namespace {

using exec::AggregateOp;
using exec::RangePredicate;
using exec::ScanOutputsEqual;
using exec::ScanSpec;
using service::QueryService;
using service::SelectionKey;
using service::SelectionVectorCache;
using service::ServiceOptions;
using store::Table;

constexpr uint64_t kChunk = 1024;
constexpr uint64_t kValueBound = 100000;

/// A two-column table: "k" uniform (the filter column), "v" uniform (the
/// projected/aggregated column), `rows` rows in kChunk-row chunks, sealed.
Result<Table> MakeTable(uint64_t rows, uint64_t seed, ExecContext ctx = {}) {
  RECOMP_ASSIGN_OR_RETURN(
      Table table, Table::Create({{"k", TypeId::kUInt32, {kChunk}, ""},
                                  {"v", TypeId::kUInt32, {kChunk}, ""}},
                                 ctx));
  const Column<uint32_t> k =
      testutil::UniformColumn<uint32_t>(rows, kValueBound, seed);
  const Column<uint32_t> v =
      testutil::UniformColumn<uint32_t>(rows, kValueBound, seed + 1);
  RECOMP_RETURN_NOT_OK(table.AppendBatch({AnyColumn(k), AnyColumn(v)}));
  RECOMP_RETURN_NOT_OK(table.Flush());
  return table;
}

/// A pseudo-random spec drawn from a few families: filter-only,
/// filter+projection, filter+aggregate, filterless aggregate, limited.
ScanSpec RandomSpec(Rng& rng) {
  const uint64_t lo = rng.Below(kValueBound);
  const uint64_t hi = lo + rng.Below(kValueBound / 4);
  ScanSpec spec;
  switch (rng.Below(5)) {
    case 0:
      spec.Filter("k", {lo, hi});
      break;
    case 1:
      spec.Filter("k", {lo, hi}).Project({"v"});
      break;
    case 2:
      spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
      break;
    case 3:
      spec.Aggregate("v", AggregateOp::kMax).Aggregate("k", AggregateOp::kCount);
      break;
    default:
      spec.Filter("k", {lo, hi}).Project({"v"}).Limit(1 + rng.Below(500));
      break;
  }
  return spec;
}

TEST(ServiceTest, BatchedResultsMatchSoloScan) {
  auto table = MakeTable(16 * 1024, 901);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  Rng rng(902);
  std::vector<ScanSpec> specs;
  std::vector<QueryService::ResultFuture> futures;
  const uint64_t client = svc.RegisterClient();
  for (int q = 0; q < 24; ++q) {
    specs.push_back(RandomSpec(rng));
    auto future = svc.Submit(client, specs.back());
    ASSERT_OK(future.status());
    futures.push_back(std::move(*future));
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    Result<exec::ScanResult> batched = futures[q].get();
    ASSERT_OK(batched.status()) << "query " << q;
    auto solo = exec::Scan(*snap, specs[q]);
    ASSERT_OK(solo.status()) << "query " << q;
    EXPECT_TRUE(ScanOutputsEqual(*batched, *solo)) << "query " << q;
  }
  EXPECT_GE(svc.stats().queries_executed, futures.size());
}

TEST(ServiceTest, AdmissionRejectsUnknownClientsAndStoppedService) {
  auto table = MakeTable(kChunk, 903);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const auto unknown = svc.Submit(77, spec);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kKeyError);

  const uint64_t client = svc.RegisterClient();
  svc.Stop();
  const auto stopped = svc.Submit(client, spec);
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, AdmissionEnforcesPerClientInFlightLimit) {
  auto table = MakeTable(kChunk, 904);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.max_in_flight_per_client = 2;
  // A wide-open window parks submissions in the queue so the limit binds.
  options.batch_window = std::chrono::microseconds(200 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const uint64_t a = svc.RegisterClient();
  const uint64_t b = svc.RegisterClient();
  auto f1 = svc.Submit(a, spec);
  auto f2 = svc.Submit(a, spec);
  ASSERT_OK(f1.status());
  ASSERT_OK(f2.status());
  const auto refused = svc.Submit(a, spec);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // Another client is unaffected: the limit is per client.
  auto f3 = svc.Submit(b, spec);
  ASSERT_OK(f3.status());

  // Once the batch executes, the client's slots free up again.
  ASSERT_OK(f1->get().status());
  ASSERT_OK(f2->get().status());
  auto f4 = svc.Submit(a, spec);
  EXPECT_OK(f4.status());
}

TEST(ServiceTest, AdmissionEnforcesGlobalQueueDepth) {
  auto table = MakeTable(kChunk, 905);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.max_queue_depth = 3;
  options.batch_window = std::chrono::microseconds(200 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  std::vector<QueryService::ResultFuture> futures;
  // Distinct clients, so only the global queue bound can refuse. The
  // dispatcher may pick up the first window's queries at any moment, so
  // keep submitting until a refusal lands — it must be ResourceExhausted.
  Status refused = Status::OK();
  for (int i = 0; i < 64 && refused.ok(); ++i) {
    auto future = svc.Submit(svc.RegisterClient(), spec);
    if (future.ok()) {
      futures.push_back(std::move(*future));
    } else {
      refused = future.status();
    }
  }
  ASSERT_FALSE(refused.ok()) << "queue bound never bound";
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  for (auto& future : futures) EXPECT_OK(future.get().status());
}

TEST(ServiceTest, QueuedDeadlineExpiresWithoutExecuting) {
  auto table = MakeTable(kChunk, 906);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(20 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const uint64_t client = svc.RegisterClient();
  // An already-expired deadline: the window holds the query long enough
  // that pickup happens strictly after it.
  auto expired = svc.Submit(client, spec, std::chrono::nanoseconds(0));
  ASSERT_OK(expired.status());
  // A generous deadline on the same window must still execute.
  auto alive = svc.Submit(client, spec, std::chrono::seconds(60));
  ASSERT_OK(alive.status());

  Result<exec::ScanResult> expired_result = expired->get();
  ASSERT_FALSE(expired_result.ok());
  EXPECT_EQ(expired_result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_OK(alive->get().status());
}

TEST(ServiceTest, PerQueryErrorsFailOnlyTheirSlotAndNameTheColumn) {
  auto table = MakeTable(4 * kChunk, 907);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  const uint64_t client = svc.RegisterClient();
  ScanSpec good;
  good.Filter("k", {0, kValueBound / 2}).Aggregate("v", AggregateOp::kSum);
  ScanSpec bad;
  bad.Filter("nope", {0, 10});
  auto good_future = svc.Submit(client, good);
  auto bad_future = svc.Submit(client, bad);
  ASSERT_OK(good_future.status());
  ASSERT_OK(bad_future.status());

  EXPECT_OK(good_future->get().status());
  Result<exec::ScanResult> bad_result = bad_future->get();
  ASSERT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kKeyError);
  EXPECT_NE(bad_result.status().message().find("filter column 'nope'"),
            std::string::npos)
      << bad_result.status().ToString();
}

TEST(ServiceTest, SelectionCacheHitsAcrossQueriesAndInvalidatesOnVersion) {
  SelectionVectorCache cache(/*capacity=*/8);
  exec::SelectionResult result;
  result.positions = {1, 5, 9};
  const SelectionKey key{0, 2, 10, 20};

  exec::SelectionResult out;
  EXPECT_FALSE(cache.Lookup(1, key, &out));
  cache.Insert(1, key, result);
  ASSERT_TRUE(cache.Lookup(1, key, &out));
  EXPECT_EQ(out.positions, result.positions);
  EXPECT_EQ(cache.size(), 1u);

  // A newer version purges everything; the old entry is gone even when the
  // old version asks again (stale versions never resurrect).
  EXPECT_FALSE(cache.Lookup(2, key, &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.version(), 2u);
  EXPECT_FALSE(cache.Lookup(1, key, &out));
  cache.Insert(1, key, result);  // Stale insert: dropped.
  EXPECT_EQ(cache.size(), 0u);

  // FIFO eviction at capacity.
  for (uint64_t i = 0; i < 10; ++i) {
    cache.Insert(3, {0, i, 0, 5}, result);
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_FALSE(cache.Lookup(3, {0, 0, 0, 5}, &out));  // Oldest two evicted.
  EXPECT_FALSE(cache.Lookup(3, {0, 1, 0, 5}, &out));
  EXPECT_TRUE(cache.Lookup(3, {0, 2, 0, 5}, &out));

  // Capacity 0 disables caching entirely.
  SelectionVectorCache disabled(0);
  disabled.Insert(1, key, result);
  EXPECT_FALSE(disabled.Lookup(1, key, &out));
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(ServiceTest, AppendInvalidatesCachedSelectionsAndResultsStayFresh) {
  auto table = MakeTable(8 * kChunk, 908);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Filter("k", {0, kValueBound / 3});
  const uint64_t client = svc.RegisterClient();

  auto first = svc.Submit(client, spec);
  ASSERT_OK(first.status());
  Result<exec::ScanResult> before = first->get();
  ASSERT_OK(before.status());

  // Append rows that all match the filter: the version bumps, cached
  // selection vectors for the old version must not leak into the answer.
  const uint64_t appended = 3 * kChunk;
  Column<uint32_t> extra_k(appended, 1);
  Column<uint32_t> extra_v(appended, 2);
  ASSERT_OK(table->AppendBatch({AnyColumn(extra_k), AnyColumn(extra_v)}));
  ASSERT_OK(table->Flush());

  auto second = svc.Submit(client, spec);
  ASSERT_OK(second.status());
  Result<exec::ScanResult> after = second->get();
  ASSERT_OK(after.status());
  EXPECT_EQ(after->rows_scanned, before->rows_scanned + appended);
  EXPECT_EQ(after->rows_matched, before->rows_matched + appended);

  // And the batched answer still matches solo execution post-append.
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto solo = exec::Scan(*snap, spec);
  ASSERT_OK(solo.status());
  EXPECT_TRUE(ScanOutputsEqual(*after, *solo));
}

TEST(ServiceTest, SharedDecodingBeatsPerQueryDecoding) {
  auto table = MakeTable(16 * kChunk, 909);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(50 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  // Eight filter queries over the same column: wherever the batching falls,
  // the decoded-chunk and selection caches guarantee each chunk decodes at
  // most once per version while every query still evaluates it.
  const uint64_t client = svc.RegisterClient();
  std::vector<QueryService::ResultFuture> futures;
  for (int q = 0; q < 8; ++q) {
    ScanSpec spec;
    // Mid-range: every chunk straddles both bounds, so none is zone-pruned
    // or contained — each one genuinely selects against decoded values.
    spec.Filter("k", {1000, kValueBound / 2});
    auto future = svc.Submit(client, spec);
    ASSERT_OK(future.status());
    futures.push_back(std::move(*future));
  }
  for (auto& future : futures) ASSERT_OK(future.get().status());

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.queries_executed, 8u);
  EXPECT_GT(stats.chunk_evaluations, 0u);
  EXPECT_GT(stats.chunks_decoded, 0u);
  // 8 queries × 16 chunks of evaluations over at most 16 decodes.
  EXPECT_GE(stats.sharing_ratio(), 4.0)
      << "evaluations=" << stats.chunk_evaluations
      << " decodes=" << stats.chunks_decoded;
  EXPECT_LE(stats.chunks_decoded, 16u);
}

TEST(ServiceTest, ServiceMetricsLandInTheRegistry) {
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();
  auto table = MakeTable(4 * kChunk, 910);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  const uint64_t client = svc.RegisterClient();
  ScanSpec spec;
  // Mid-range so no chunk is zone-contained: selection must decode.
  spec.Filter("k", {1000, kValueBound / 2});
  auto future = svc.Submit(client, spec);
  ASSERT_OK(future.status());
  ASSERT_OK(future->get().status());
  svc.Flush();

  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  EXPECT_GT(after.counter("service.queries.admitted"),
            before.counter("service.queries.admitted"));
  EXPECT_GT(after.counter("service.queries.succeeded"),
            before.counter("service.queries.succeeded"));
  EXPECT_GT(after.counter("service.batches"), before.counter("service.batches"));
  EXPECT_GT(after.counter("service.chunk_evaluations"),
            before.counter("service.chunk_evaluations"));
  EXPECT_GT(after.counter("service.chunks_decoded"),
            before.counter("service.chunks_decoded"));
}

TEST(ServiceTest, StopDrainsQueuedQueriesBeforeJoining) {
  auto table = MakeTable(2 * kChunk, 911);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(10 * 1000 * 1000);  // 10s.
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const uint64_t client = svc.RegisterClient();
  std::vector<QueryService::ResultFuture> futures;
  for (int q = 0; q < 5; ++q) {
    auto future = svc.Submit(client, spec);
    ASSERT_OK(future.status());
    futures.push_back(std::move(*future));
  }
  // Stop must cut the 10s window short AND answer everything queued.
  svc.Stop();
  for (auto& future : futures) {
    Result<exec::ScanResult> result = future.get();
    ASSERT_OK(result.status());
    EXPECT_EQ(result->aggregates[0].value(), 2 * kChunk);
  }
}

TEST(ServiceTest, OptionsValidate) {
  auto table = MakeTable(kChunk, 912);
  ASSERT_OK(table.status());
  ServiceOptions bad;
  bad.max_batch_queries = 0;
  EXPECT_FALSE(QueryService::Create(&*table, bad).ok());
  bad = ServiceOptions{};
  bad.max_queue_depth = 0;
  EXPECT_FALSE(QueryService::Create(&*table, bad).ok());
  bad = ServiceOptions{};
  bad.max_in_flight_per_client = 0;
  EXPECT_FALSE(QueryService::Create(&*table, bad).ok());
  EXPECT_FALSE(QueryService::Create(nullptr).ok());
}

}  // namespace
}  // namespace recomp
