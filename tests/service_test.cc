// QueryService: admission control, deadlines, shared-scan batching, and the
// recycled-intermediate caches (selection vectors, decoded chunks).
//
// The load-bearing property is semantic: every batched result must be
// bit-identical (exec::ScanOutputsEqual) to running the same spec through
// solo exec::Scan against the same snapshot — batching is an execution
// strategy, never a semantic change. Around that: admission refusals carry
// the right status codes, queued queries expire against their deadlines,
// version bumps invalidate the selection-vector cache, and the sharing
// ratio actually materializes (more chunk evaluations than decodes).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exec/scan.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "service/result_cache.h"
#include "service/selection_cache.h"
#include "service/shared_scan.h"
#include "store/table.h"
#include "test_util.h"
#include "util/macros.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace recomp {
namespace {

using exec::AggregateOp;
using exec::RangePredicate;
using exec::ScanOutputsEqual;
using exec::ScanSpec;
using service::QueryService;
using service::SelectionKey;
using service::SelectionVectorCache;
using service::ServiceOptions;
using store::Table;

constexpr uint64_t kChunk = 1024;
constexpr uint64_t kValueBound = 100000;

/// A two-column table: "k" uniform (the filter column), "v" uniform (the
/// projected/aggregated column), `rows` rows in kChunk-row chunks, sealed.
Result<Table> MakeTable(uint64_t rows, uint64_t seed, ExecContext ctx = {}) {
  RECOMP_ASSIGN_OR_RETURN(
      Table table, Table::Create({{"k", TypeId::kUInt32, {kChunk}, ""},
                                  {"v", TypeId::kUInt32, {kChunk}, ""}},
                                 ctx));
  const Column<uint32_t> k =
      testutil::UniformColumn<uint32_t>(rows, kValueBound, seed);
  const Column<uint32_t> v =
      testutil::UniformColumn<uint32_t>(rows, kValueBound, seed + 1);
  RECOMP_RETURN_NOT_OK(table.AppendBatch({AnyColumn(k), AnyColumn(v)}));
  RECOMP_RETURN_NOT_OK(table.Flush());
  return table;
}

/// A pseudo-random spec drawn from a few families: filter-only,
/// filter+projection, filter+aggregate, filterless aggregate, limited.
ScanSpec RandomSpec(Rng& rng) {
  const uint64_t lo = rng.Below(kValueBound);
  const uint64_t hi = lo + rng.Below(kValueBound / 4);
  ScanSpec spec;
  switch (rng.Below(5)) {
    case 0:
      spec.Filter("k", {lo, hi});
      break;
    case 1:
      spec.Filter("k", {lo, hi}).Project({"v"});
      break;
    case 2:
      spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
      break;
    case 3:
      spec.Aggregate("v", AggregateOp::kMax).Aggregate("k", AggregateOp::kCount);
      break;
    default:
      spec.Filter("k", {lo, hi}).Project({"v"}).Limit(1 + rng.Below(500));
      break;
  }
  return spec;
}

TEST(ServiceTest, BatchedResultsMatchSoloScan) {
  auto table = MakeTable(16 * 1024, 901);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  Rng rng(902);
  std::vector<ScanSpec> specs;
  std::vector<QueryService::ResultFuture> futures;
  const uint64_t client = svc.RegisterClient();
  for (int q = 0; q < 24; ++q) {
    specs.push_back(RandomSpec(rng));
    auto future = svc.Submit(client, specs.back());
    ASSERT_OK(future.status());
    futures.push_back(std::move(*future));
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    Result<exec::ScanResult> batched = futures[q].get();
    ASSERT_OK(batched.status()) << "query " << q;
    auto solo = exec::Scan(*snap, specs[q]);
    ASSERT_OK(solo.status()) << "query " << q;
    EXPECT_TRUE(ScanOutputsEqual(*batched, *solo)) << "query " << q;
  }
  // Every admitted query was answered by exactly one of: execution, an
  // identical companion in its batch, or the result cache.
  const service::ServiceStats stats = svc.stats();
  EXPECT_GE(stats.queries_executed + stats.batch_dedup_hits +
                stats.result_cache_hits,
            futures.size());
}

TEST(ServiceTest, AdmissionRejectsUnknownClientsAndStoppedService) {
  auto table = MakeTable(kChunk, 903);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const auto unknown = svc.Submit(77, spec);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kKeyError);

  const uint64_t client = svc.RegisterClient();
  svc.Stop();
  const auto stopped = svc.Submit(client, spec);
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, AdmissionEnforcesPerClientInFlightLimit) {
  auto table = MakeTable(kChunk, 904);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.max_in_flight_per_client = 2;
  // A wide-open window parks submissions in the queue so the limit binds.
  options.batch_window = std::chrono::microseconds(200 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const uint64_t a = svc.RegisterClient();
  const uint64_t b = svc.RegisterClient();
  auto f1 = svc.Submit(a, spec);
  auto f2 = svc.Submit(a, spec);
  ASSERT_OK(f1.status());
  ASSERT_OK(f2.status());
  const auto refused = svc.Submit(a, spec);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // Another client is unaffected: the limit is per client.
  auto f3 = svc.Submit(b, spec);
  ASSERT_OK(f3.status());

  // Once the batch executes, the client's slots free up again.
  ASSERT_OK(f1->get().status());
  ASSERT_OK(f2->get().status());
  auto f4 = svc.Submit(a, spec);
  EXPECT_OK(f4.status());
}

TEST(ServiceTest, AdmissionEnforcesGlobalQueueDepth) {
  auto table = MakeTable(kChunk, 905);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.max_queue_depth = 3;
  options.batch_window = std::chrono::microseconds(200 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  std::vector<QueryService::ResultFuture> futures;
  // Distinct clients, so only the global queue bound can refuse. The
  // dispatcher may pick up the first window's queries at any moment, so
  // keep submitting until a refusal lands — it must be ResourceExhausted.
  Status refused = Status::OK();
  for (int i = 0; i < 64 && refused.ok(); ++i) {
    auto future = svc.Submit(svc.RegisterClient(), spec);
    if (future.ok()) {
      futures.push_back(std::move(*future));
    } else {
      refused = future.status();
    }
  }
  ASSERT_FALSE(refused.ok()) << "queue bound never bound";
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  for (auto& future : futures) EXPECT_OK(future.get().status());
}

TEST(ServiceTest, QueuedDeadlineExpiresWithoutExecuting) {
  auto table = MakeTable(kChunk, 906);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(20 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const uint64_t client = svc.RegisterClient();
  // An already-expired deadline: the window holds the query long enough
  // that pickup happens strictly after it.
  auto expired = svc.Submit(client, spec, std::chrono::nanoseconds(0));
  ASSERT_OK(expired.status());
  // A generous deadline on the same window must still execute.
  auto alive = svc.Submit(client, spec, std::chrono::seconds(60));
  ASSERT_OK(alive.status());

  Result<exec::ScanResult> expired_result = expired->get();
  ASSERT_FALSE(expired_result.ok());
  EXPECT_EQ(expired_result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_OK(alive->get().status());
}

TEST(ServiceTest, PerQueryErrorsFailOnlyTheirSlotAndNameTheColumn) {
  auto table = MakeTable(4 * kChunk, 907);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  const uint64_t client = svc.RegisterClient();
  ScanSpec good;
  good.Filter("k", {0, kValueBound / 2}).Aggregate("v", AggregateOp::kSum);
  ScanSpec bad;
  bad.Filter("nope", {0, 10});
  auto good_future = svc.Submit(client, good);
  auto bad_future = svc.Submit(client, bad);
  ASSERT_OK(good_future.status());
  ASSERT_OK(bad_future.status());

  EXPECT_OK(good_future->get().status());
  Result<exec::ScanResult> bad_result = bad_future->get();
  ASSERT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kKeyError);
  EXPECT_NE(bad_result.status().message().find("filter column 'nope'"),
            std::string::npos)
      << bad_result.status().ToString();
}

TEST(ServiceTest, SelectionCacheHitsAcrossQueriesAndInvalidatesOnVersion) {
  SelectionVectorCache cache(/*capacity=*/8);
  service::CachedSelection entry;
  entry.selection.positions = {1, 5, 9};
  entry.values = {11, 15, 19};
  const SelectionKey key{0, 2, 10, 20};

  service::CachedSelection out;
  EXPECT_FALSE(cache.Lookup(1, key, &out));
  cache.Insert(1, key, entry);
  ASSERT_TRUE(cache.Lookup(1, key, &out));
  EXPECT_EQ(out.selection.positions, entry.selection.positions);
  EXPECT_EQ(out.values, entry.values);
  EXPECT_EQ(cache.size(), 1u);

  // A newer version purges everything; the old entry is gone even when the
  // old version asks again (stale versions never resurrect).
  EXPECT_FALSE(cache.Lookup(2, key, &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.version(), 2u);
  EXPECT_FALSE(cache.Lookup(1, key, &out));
  cache.Insert(1, key, entry);  // Stale insert: dropped.
  EXPECT_EQ(cache.size(), 0u);

  // FIFO eviction at capacity.
  for (uint64_t i = 0; i < 10; ++i) {
    cache.Insert(3, {0, i, 0, 5}, entry);
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_FALSE(cache.Lookup(3, {0, 0, 0, 5}, &out));  // Oldest two evicted.
  EXPECT_FALSE(cache.Lookup(3, {0, 1, 0, 5}, &out));
  EXPECT_TRUE(cache.Lookup(3, {0, 2, 0, 5}, &out));

  // Capacity 0 disables caching entirely.
  SelectionVectorCache disabled(0);
  disabled.Insert(1, key, entry);
  EXPECT_FALSE(disabled.Lookup(1, key, &out));
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(ServiceTest, AppendInvalidatesCachedSelectionsAndResultsStayFresh) {
  auto table = MakeTable(8 * kChunk, 908);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Filter("k", {0, kValueBound / 3});
  const uint64_t client = svc.RegisterClient();

  auto first = svc.Submit(client, spec);
  ASSERT_OK(first.status());
  Result<exec::ScanResult> before = first->get();
  ASSERT_OK(before.status());

  // Append rows that all match the filter: the version bumps, cached
  // selection vectors for the old version must not leak into the answer.
  const uint64_t appended = 3 * kChunk;
  Column<uint32_t> extra_k(appended, 1);
  Column<uint32_t> extra_v(appended, 2);
  ASSERT_OK(table->AppendBatch({AnyColumn(extra_k), AnyColumn(extra_v)}));
  ASSERT_OK(table->Flush());

  auto second = svc.Submit(client, spec);
  ASSERT_OK(second.status());
  Result<exec::ScanResult> after = second->get();
  ASSERT_OK(after.status());
  EXPECT_EQ(after->rows_scanned, before->rows_scanned + appended);
  EXPECT_EQ(after->rows_matched, before->rows_matched + appended);

  // And the batched answer still matches solo execution post-append.
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto solo = exec::Scan(*snap, spec);
  ASSERT_OK(solo.status());
  EXPECT_TRUE(ScanOutputsEqual(*after, *solo));
}

TEST(ServiceTest, SharedDecodingBeatsPerQueryDecoding) {
  auto table = MakeTable(16 * kChunk, 909);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(50 * 1000);
  // Identical specs would dedup onto one execution; this test is about the
  // decode sharing underneath, so make all eight actually run.
  options.result_cache_bytes = 0;
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  // Eight filter queries over the same column: wherever the batching falls,
  // the decoded-chunk and selection caches guarantee each chunk decodes at
  // most once per version while every query still evaluates it.
  const uint64_t client = svc.RegisterClient();
  std::vector<QueryService::ResultFuture> futures;
  for (int q = 0; q < 8; ++q) {
    ScanSpec spec;
    // Mid-range: every chunk straddles both bounds, so none is zone-pruned
    // or contained — each one genuinely selects against decoded values.
    spec.Filter("k", {1000, kValueBound / 2});
    auto future = svc.Submit(client, spec);
    ASSERT_OK(future.status());
    futures.push_back(std::move(*future));
  }
  for (auto& future : futures) ASSERT_OK(future.get().status());

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.queries_executed, 8u);
  EXPECT_GT(stats.chunk_evaluations, 0u);
  EXPECT_GT(stats.chunks_decoded, 0u);
  // 8 queries × 16 chunks of evaluations over at most 16 decodes.
  EXPECT_GE(stats.sharing_ratio(), 4.0)
      << "evaluations=" << stats.chunk_evaluations
      << " decodes=" << stats.chunks_decoded;
  EXPECT_LE(stats.chunks_decoded, 16u);
}

TEST(ServiceTest, ServiceMetricsLandInTheRegistry) {
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();
  auto table = MakeTable(4 * kChunk, 910);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  const uint64_t client = svc.RegisterClient();
  ScanSpec spec;
  // Mid-range so no chunk is zone-contained: selection must decode.
  spec.Filter("k", {1000, kValueBound / 2});
  auto future = svc.Submit(client, spec);
  ASSERT_OK(future.status());
  ASSERT_OK(future->get().status());
  svc.Flush();

  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  EXPECT_GT(after.counter("service.queries.admitted"),
            before.counter("service.queries.admitted"));
  EXPECT_GT(after.counter("service.queries.succeeded"),
            before.counter("service.queries.succeeded"));
  EXPECT_GT(after.counter("service.batches"), before.counter("service.batches"));
  EXPECT_GT(after.counter("service.chunk_evaluations"),
            before.counter("service.chunk_evaluations"));
  EXPECT_GT(after.counter("service.chunks_decoded"),
            before.counter("service.chunks_decoded"));
}

TEST(ServiceTest, StopDrainsQueuedQueriesBeforeJoining) {
  auto table = MakeTable(2 * kChunk, 911);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(10 * 1000 * 1000);  // 10s.
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Aggregate("v", AggregateOp::kCount);
  const uint64_t client = svc.RegisterClient();
  std::vector<QueryService::ResultFuture> futures;
  for (int q = 0; q < 5; ++q) {
    auto future = svc.Submit(client, spec);
    ASSERT_OK(future.status());
    futures.push_back(std::move(*future));
  }
  // Stop must cut the 10s window short AND answer everything queued.
  svc.Stop();
  for (auto& future : futures) {
    Result<exec::ScanResult> result = future.get();
    ASSERT_OK(result.status());
    EXPECT_EQ(result->aggregates[0].value(), 2 * kChunk);
  }
}

TEST(ServiceTest, CanonicalSpecKeyNormalizesConjunctionOrderOnly) {
  ScanSpec ab;
  ab.Filter("a", {1, 5}).Filter("b", {2, 6});
  ScanSpec ba;
  ba.Filter("b", {2, 6}).Filter("a", {1, 5});
  // A conjunction commutes, so filter order must not split cache entries.
  EXPECT_EQ(exec::CanonicalSpecKey(ab), exec::CanonicalSpecKey(ba));
  EXPECT_EQ(exec::CanonicalSpecHash(ab), exec::CanonicalSpecHash(ba));

  ScanSpec other_band;
  other_band.Filter("a", {1, 6}).Filter("b", {2, 6});
  EXPECT_NE(exec::CanonicalSpecKey(ab), exec::CanonicalSpecKey(other_band));

  // Projection order shapes the output and must stay significant.
  ScanSpec p1, p2;
  p1.Project({"a", "b"});
  p2.Project({"b", "a"});
  EXPECT_NE(exec::CanonicalSpecKey(p1), exec::CanonicalSpecKey(p2));

  ScanSpec limited = ab;
  limited.Limit(10);
  EXPECT_NE(exec::CanonicalSpecKey(ab), exec::CanonicalSpecKey(limited));
}

TEST(ServiceTest, ResultCacheBudgetsBytesAndInvalidatesOnVersion) {
  exec::ScanResult result;
  result.rows_scanned = 100;
  result.rows_matched = 3;
  result.positions = {1, 5, 9};
  const uint64_t entry_bytes = service::ResultCache::ApproxResultBytes(result);
  ASSERT_GT(entry_bytes, 0u);

  // Room for two entries, not three: the third insert evicts the oldest.
  service::ResultCache cache(2 * entry_bytes + entry_bytes / 2);
  exec::ScanResult out;
  EXPECT_FALSE(cache.Lookup(1, "a", &out));
  cache.Insert(1, "a", result);
  ASSERT_TRUE(cache.Lookup(1, "a", &out));
  EXPECT_EQ(out.positions, result.positions);
  EXPECT_EQ(out.rows_matched, result.rows_matched);
  cache.Insert(1, "b", result);
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert(1, "c", result);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(1, "a", &out));  // FIFO: oldest evicted.
  EXPECT_TRUE(cache.Lookup(1, "b", &out));
  EXPECT_TRUE(cache.Lookup(1, "c", &out));
  EXPECT_LE(cache.bytes(), 2 * entry_bytes + entry_bytes / 2);

  // A newer version purges everything; stale inserts never resurrect.
  EXPECT_FALSE(cache.Lookup(2, "b", &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.version(), 2u);
  cache.Insert(1, "stale", result);
  EXPECT_EQ(cache.size(), 0u);

  // An entry alone exceeding the budget is never cached; 0 disables.
  service::ResultCache tiny(8);
  tiny.Insert(1, "big", result);
  EXPECT_EQ(tiny.size(), 0u);
  service::ResultCache disabled(0);
  disabled.Insert(1, "x", result);
  EXPECT_FALSE(disabled.Lookup(1, "x", &out));
}

TEST(ServiceTest, ResultCacheServesRepeatedSpecsWithoutExecuting) {
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();
  auto table = MakeTable(8 * kChunk, 913);
  ASSERT_OK(table.status());
  auto service = QueryService::Create(&*table);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Filter("k", {1000, kValueBound / 2}).Project({"v"});
  const uint64_t client = svc.RegisterClient();
  auto first = svc.Submit(client, spec);
  ASSERT_OK(first.status());
  Result<exec::ScanResult> cold = first->get();
  ASSERT_OK(cold.status());
  svc.Flush();
  const uint64_t executed_cold = svc.stats().queries_executed;

  // The same spec at the same data version: answered from the result cache,
  // bit-identical, with no new execution.
  auto second = svc.Submit(client, spec);
  ASSERT_OK(second.status());
  Result<exec::ScanResult> warm = second->get();
  ASSERT_OK(warm.status());
  EXPECT_TRUE(ScanOutputsEqual(*warm, *cold));
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto solo = exec::Scan(*snap, spec);
  ASSERT_OK(solo.status());
  EXPECT_TRUE(ScanOutputsEqual(*warm, *solo));

  const service::ServiceStats stats = svc.stats();
  EXPECT_GE(stats.result_cache_hits, 1u);
  EXPECT_EQ(stats.queries_executed, executed_cold);
  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  EXPECT_GE(after.counter("service.result_cache.hits"),
            before.counter("service.result_cache.hits") + 1);
}

TEST(ServiceTest, IdenticalSpecsInOneWindowExecuteOnce) {
  auto table = MakeTable(8 * kChunk, 914);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(50 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Filter("k", {1000, kValueBound / 2}).Aggregate("v", AggregateOp::kSum);
  const uint64_t client = svc.RegisterClient();
  std::vector<QueryService::ResultFuture> futures;
  for (int q = 0; q < 8; ++q) {
    auto future = svc.Submit(client, spec);
    ASSERT_OK(future.status());
    futures.push_back(std::move(*future));
  }
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto solo = exec::Scan(*snap, spec);
  ASSERT_OK(solo.status());
  for (auto& future : futures) {
    Result<exec::ScanResult> result = future.get();
    ASSERT_OK(result.status());
    EXPECT_TRUE(ScanOutputsEqual(*result, *solo));
  }
  // Wherever the batching fell, only the FIRST occurrence executed: its
  // window companions deduplicated onto it, later windows hit the cache.
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.queries_executed, 1u);
  EXPECT_EQ(stats.batch_dedup_hits + stats.result_cache_hits, 7u);
}

TEST(ServiceTest, NestedBandsEvaluateOverContainingSelection) {
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();
  auto table = MakeTable(8 * kChunk, 915);
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(50 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  // Mid-range bands so no chunk zone-prunes or zone-contains; the narrow
  // band sits strictly inside the wide one, so it must evaluate by
  // re-filtering the wide band's selection, never touching the chunks.
  ScanSpec wide;
  wide.Filter("k", {1000, kValueBound / 2});
  ScanSpec narrow;
  narrow.Filter("k", {2000, kValueBound / 4}).Project({"v"});
  const uint64_t client = svc.RegisterClient();
  auto wide_future = svc.Submit(client, wide);
  auto narrow_future = svc.Submit(client, narrow);
  ASSERT_OK(wide_future.status());
  ASSERT_OK(narrow_future.status());

  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  Result<exec::ScanResult> wide_batched = wide_future->get();
  ASSERT_OK(wide_batched.status());
  auto wide_solo = exec::Scan(*snap, wide);
  ASSERT_OK(wide_solo.status());
  EXPECT_TRUE(ScanOutputsEqual(*wide_batched, *wide_solo));
  Result<exec::ScanResult> narrow_batched = narrow_future->get();
  ASSERT_OK(narrow_batched.status());
  auto narrow_solo = exec::Scan(*snap, narrow);
  ASSERT_OK(narrow_solo.status());
  EXPECT_TRUE(ScanOutputsEqual(*narrow_batched, *narrow_solo));
  svc.Flush();
  EXPECT_GT(svc.stats().subsumed_evaluations, 0u);
  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  EXPECT_GT(after.counter("service.subsumed_evaluations"),
            before.counter("service.subsumed_evaluations"));
}

TEST(ServiceTest, QueuedDeadlineTighterThanWindowCutsTheWindowEarly) {
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();
  auto table = MakeTable(2 * kChunk, 916);
  ASSERT_OK(table.status());
  ServiceOptions options;
  // A 10-second window: without the early cut, the query would sit queued
  // past its 500ms deadline and be refused at pickup (or the test would
  // time out waiting) — exactly the pre-fix dispatcher bug.
  options.batch_window = std::chrono::microseconds(10 * 1000 * 1000);
  auto service = QueryService::Create(&*table, options);
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  ScanSpec spec;
  spec.Filter("k", {1000, kValueBound / 2}).Aggregate("v", AggregateOp::kSum);
  const uint64_t client = svc.RegisterClient();
  auto future = svc.Submit(client, spec, std::chrono::milliseconds(500));
  ASSERT_OK(future.status());
  ASSERT_EQ(future->wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "dispatcher held the full window despite the tighter deadline";
  EXPECT_OK(future->get().status());

  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  EXPECT_GE(after.counter("service.window_early_cuts"),
            before.counter("service.window_early_cuts") + 1);
}

TEST(ServiceTest, DeadlineMissedDuringExecutionIsDeadlineExceeded) {
  const obs::MetricsSnapshot before = Table::MetricsSnapshot();
  auto table = MakeTable(2 * kChunk, 917);
  ASSERT_OK(table.status());

  // Wedge both pool workers so the batch (whose second query fans out to
  // the pool) cannot finish until well past the queries' deadlines.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (pool.active_workers() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(100 * 1000);
  auto service =
      QueryService::Create(&*table, options, ExecContext{&pool, 1});
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  // Two DISTINCT specs: dedup must not collapse them, so the batch fans out
  // and its pool task blocks behind the wedge. Both deadlines comfortably
  // outlast the pickup (so the queued-expiry path stays silent) and expire
  // mid-execution.
  ScanSpec a;
  a.Filter("k", {1000, kValueBound / 2});
  ScanSpec b;
  b.Filter("k", {1000, kValueBound / 2}).Project({"v"});
  const uint64_t client = svc.RegisterClient();
  auto fa = svc.Submit(client, a, std::chrono::milliseconds(400));
  auto fb = svc.Submit(client, b, std::chrono::milliseconds(400));
  ASSERT_OK(fa.status());
  ASSERT_OK(fb.status());

  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
    release.store(true, std::memory_order_release);
  });
  Result<exec::ScanResult> ra = fa->get();
  Result<exec::ScanResult> rb = fb->get();
  releaser.join();

  // Pre-fix, both came back OK: the deadline was only checked at pickup.
  ASSERT_FALSE(ra.ok());
  EXPECT_EQ(ra.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kDeadlineExceeded);

  const obs::MetricsSnapshot after = Table::MetricsSnapshot();
  EXPECT_GE(after.counter("service.deadline_missed_in_flight"),
            before.counter("service.deadline_missed_in_flight") + 2);
  EXPECT_EQ(after.counter("service.queries.deadline_expired"),
            before.counter("service.queries.deadline_expired"));
}

TEST(ServiceTest, OptionsValidate) {
  auto table = MakeTable(kChunk, 912);
  ASSERT_OK(table.status());
  ServiceOptions bad;
  bad.max_batch_queries = 0;
  EXPECT_FALSE(QueryService::Create(&*table, bad).ok());
  bad = ServiceOptions{};
  bad.max_queue_depth = 0;
  EXPECT_FALSE(QueryService::Create(&*table, bad).ok());
  bad = ServiceOptions{};
  bad.max_in_flight_per_client = 0;
  EXPECT_FALSE(QueryService::Create(&*table, bad).ok());
  EXPECT_FALSE(QueryService::Create(nullptr).ok());
}

}  // namespace
}  // namespace recomp
