// Additional edge-case coverage for compressed-domain selection: boundary
// predicates, degenerate columns, type extremes, and strategy boundaries.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "core/rewrite.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "ops/select.h"
#include "test_util.h"

namespace recomp {
namespace {

using exec::RangePredicate;

Column<uint32_t> Reference(const CompressedColumn& compressed,
                           const RangePredicate& pred) {
  auto column = Decompress(compressed);
  EXPECT_OK(column.status());
  auto positions = ops::SelectRange<uint32_t>(
      column->As<uint32_t>(), static_cast<uint32_t>(pred.lo),
      static_cast<uint32_t>(std::min<uint64_t>(pred.hi, ~uint32_t{0})));
  EXPECT_OK(positions.status());
  return *positions;
}

TEST(SelectionEdgeTest, PointPredicateOnRuns) {
  Column<uint32_t> col = gen::SortedRuns(5000, 20.0, 2, 1);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  const uint32_t needle = col[2500];
  RangePredicate pred{needle, needle};
  auto result = exec::SelectCompressed(*compressed, pred);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->positions, Reference(*compressed, pred));
  EXPECT_FALSE(result->positions.empty());
}

TEST(SelectionEdgeTest, PredicateBeyondTypeRange) {
  // hi above uint32 max: everything >= lo qualifies; no overflow.
  Column<uint32_t> col = gen::Uniform(2000, ~uint32_t{0}, 2);
  auto compressed = Compress(AnyColumn(col), MakeDictNs());
  ASSERT_OK(compressed.status());
  RangePredicate pred{1u << 30, ~uint64_t{0}};
  auto result = exec::SelectCompressed(*compressed, pred);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->positions, Reference(*compressed, pred));
}

TEST(SelectionEdgeTest, PredicateEntirelyAboveDomain) {
  Column<uint32_t> col = gen::Uniform(1000, 1000, 3);
  for (const SchemeDescriptor& desc :
       {MakeRle(), MakeDictNs(), MakeFor(128)}) {
    auto compressed = Compress(AnyColumn(col), desc);
    ASSERT_OK(compressed.status());
    auto result = exec::SelectCompressed(
        *compressed, RangePredicate{uint64_t{1} << 40, uint64_t{1} << 41});
    ASSERT_OK(result.status()) << desc.ToString();
    EXPECT_TRUE(result->positions.empty()) << desc.ToString();
  }
}

TEST(SelectionEdgeTest, EmptyColumnAllStrategies) {
  Column<uint32_t> empty;
  for (const SchemeDescriptor& desc :
       {MakeRle(), MakeDictNs(), MakeFor(64), MakeDeltaNs()}) {
    auto compressed = Compress(AnyColumn(empty), desc);
    ASSERT_OK(compressed.status()) << desc.ToString();
    auto result =
        exec::SelectCompressed(*compressed, RangePredicate{0, ~uint64_t{0}});
    ASSERT_OK(result.status()) << desc.ToString();
    EXPECT_TRUE(result->positions.empty());
  }
}

TEST(SelectionEdgeTest, MaxValueSegmentsDoNotOverflow) {
  // Segment windows near the top of uint32: ref + mask must saturate, not
  // wrap, or pruning would skip qualifying segments.
  Column<uint32_t> col;
  for (int i = 0; i < 4096; ++i) {
    col.push_back(~uint32_t{0} - static_cast<uint32_t>(i % 64));
  }
  auto compressed = Compress(AnyColumn(col), MakeFor(256));
  ASSERT_OK(compressed.status());
  RangePredicate pred{~uint32_t{0} - 3, ~uint64_t{0}};
  auto result = exec::SelectCompressed(*compressed, pred);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->positions, Reference(*compressed, pred));
  EXPECT_FALSE(result->positions.empty());
}

TEST(SelectionEdgeTest, PeeledEnvelopeFallsBackCorrectly) {
  // After peeling FOR's residual the fast path no longer applies; the
  // fallback must still produce the right rows.
  Column<uint32_t> col = gen::StepLevels(8192, 256, 20, 5, 4);
  auto compressed = Compress(AnyColumn(col), MakeFor(256));
  ASSERT_OK(compressed.status());
  auto peeled = PeelPart(*compressed, "residual");
  ASSERT_OK(peeled.status());
  RangePredicate pred{1u << 18, 1u << 19};
  auto fast = exec::SelectCompressed(*compressed, pred);
  auto slow = exec::SelectCompressed(*peeled, pred);
  ASSERT_OK(fast.status());
  ASSERT_OK(slow.status());
  EXPECT_EQ(fast->stats.strategy, exec::Strategy::kStepPruned);
  EXPECT_EQ(slow->stats.strategy, exec::Strategy::kDecompressScan);
  EXPECT_EQ(fast->positions, slow->positions);
}

TEST(SelectionEdgeTest, SingleRowColumn) {
  Column<uint32_t> col{42};
  for (const SchemeDescriptor& desc : {MakeRle(), MakeDictNs(), Ns()}) {
    auto compressed = Compress(AnyColumn(col), desc);
    ASSERT_OK(compressed.status());
    auto hit = exec::SelectCompressed(*compressed, RangePredicate{42, 42});
    ASSERT_OK(hit.status());
    EXPECT_EQ(hit->positions, (Column<uint32_t>{0}));
    auto miss = exec::SelectCompressed(*compressed, RangePredicate{43, 99});
    ASSERT_OK(miss.status());
    EXPECT_TRUE(miss->positions.empty());
  }
}

}  // namespace
}  // namespace recomp
