// Tests for the bit pack/unpack kernels, including a parameterized property
// sweep over every bit width and awkward lengths (tail handling).

#include <gtest/gtest.h>

#include "columnar/stats.h"
#include "ops/dispatch.h"
#include "ops/pack.h"
#include "util/bits.h"
#include "util/random.h"

namespace recomp {
namespace {

TEST(PackTest, WidthZeroEncodesZeros) {
  Column<uint32_t> col{0, 0, 0};
  auto packed = ops::Pack(col, 0);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->bytes.size(), 0u);
  auto back = ops::Unpack<uint32_t>(*packed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, col);
}

TEST(PackTest, RejectsValueWiderThanWidth) {
  Column<uint32_t> col{7, 8};
  auto packed = ops::Pack(col, 3);
  EXPECT_EQ(packed.status().code(), StatusCode::kInvalidArgument);
}

TEST(PackTest, RejectsWidthBeyondType) {
  Column<uint16_t> col{1};
  EXPECT_FALSE(ops::Pack(col, 17).ok());
  EXPECT_FALSE(ops::Pack(col, -1).ok());
}

TEST(PackTest, TruncatingKeepsLowBits) {
  Column<uint32_t> col{0b1011, 0b0110};
  auto packed = ops::PackTruncating(col, 2);
  ASSERT_TRUE(packed.ok());
  auto back = ops::Unpack<uint32_t>(*packed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, (Column<uint32_t>{0b11, 0b10}));
}

TEST(PackTest, KnownBitLayout) {
  // Width 3, LSB-first: value0 occupies bits 0-2, value1 bits 3-5, value2
  // bits 6-8. byte0 = 1 | (2<<3) | ((3 & 3) << 6) = 0xD1; value2's high bit
  // (0) lands in byte1 bit 0.
  Column<uint32_t> col{1, 2, 3};
  auto packed = ops::Pack(col, 3);
  ASSERT_TRUE(packed.ok());
  ASSERT_EQ(packed->bytes.size(), 2u);  // 9 bits
  EXPECT_EQ(packed->bytes[0], 0xD1);
  EXPECT_EQ(packed->bytes[1], 0x00);

  // A value with a set high bit crossing the byte boundary: 7 = 0b111 at
  // bits 6-8 leaves bit 8 = 1 in byte1.
  Column<uint32_t> col2{1, 2, 7};
  auto packed2 = ops::Pack(col2, 3);
  ASSERT_TRUE(packed2.ok());
  EXPECT_EQ(packed2->bytes[1], 0x01);
}

TEST(PackTest, ExactByteFootprint) {
  Column<uint32_t> col(100, 1);
  auto packed = ops::Pack(col, 7);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->bytes.size(), bits::PackedByteSize(100, 7));
}

TEST(PackTest, UnpackDetectsTruncatedPayload) {
  Column<uint32_t> col{1, 2, 3, 4};
  auto packed = ops::Pack(col, 16);
  ASSERT_TRUE(packed.ok());
  PackedColumn corrupt = *packed;
  corrupt.bytes.pop_back();
  auto back = ops::Unpack<uint32_t>(corrupt);
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(PackTest, UnpackIntoNarrowerTypeRejected) {
  Column<uint32_t> col{1};
  auto packed = ops::Pack(col, 20);
  ASSERT_TRUE(packed.ok());
  auto back = ops::Unpack<uint16_t>(*packed);
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(PackTest, UnpackOneRandomAccess) {
  Rng rng(11);
  Column<uint64_t> col;
  for (int i = 0; i < 300; ++i) col.push_back(rng.Below(1u << 20));
  auto packed = ops::Pack(col, 20);
  ASSERT_TRUE(packed.ok());
  for (uint64_t i : {uint64_t{0}, uint64_t{1}, uint64_t{157}, uint64_t{299}}) {
    EXPECT_EQ(ops::UnpackOne<uint64_t>(*packed, i), col[i]) << i;
  }
}

TEST(PackTest, EmptyColumn) {
  auto packed = ops::Pack(Column<uint32_t>{}, 13);
  ASSERT_TRUE(packed.ok());
  auto back = ops::Unpack<uint32_t>(*packed);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

/// Property sweep: roundtrip over every width for u64, awkward lengths.
class PackRoundTrip64 : public ::testing::TestWithParam<int> {};

TEST_P(PackRoundTrip64, RoundTripsRandomData) {
  const int width = GetParam();
  Rng rng(1000 + width);
  for (uint64_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    Column<uint64_t> col;
    col.reserve(n);
    const uint64_t mask = bits::LowMask64(width);
    for (uint64_t i = 0; i < n; ++i) col.push_back(rng.Next() & mask);
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok()) << packed.status().ToString();
    EXPECT_EQ(packed->bytes.size(), bits::PackedByteSize(n, width));
    auto back = ops::Unpack<uint64_t>(*packed);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, col) << "width=" << width << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackRoundTrip64,
                         ::testing::Range(0, 65));

/// Same sweep for u32 (exercises the AVX2 path for widths <= 25).
class PackRoundTrip32 : public ::testing::TestWithParam<int> {};

TEST_P(PackRoundTrip32, RoundTripsRandomData) {
  const int width = GetParam();
  Rng rng(2000 + width);
  for (uint64_t n : {1u, 5u, 31u, 32u, 33u, 255u, 256u, 10000u}) {
    Column<uint32_t> col;
    col.reserve(n);
    const uint32_t mask = bits::LowMask32(width);
    for (uint64_t i = 0; i < n; ++i) {
      col.push_back(static_cast<uint32_t>(rng.Next()) & mask);
    }
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok());
    auto back = ops::Unpack<uint32_t>(*packed);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, col) << "width=" << width << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackRoundTrip32,
                         ::testing::Range(0, 33));

/// u8/u16 coverage at their extreme widths.
TEST(PackTest, NarrowTypesFullWidth) {
  Column<uint8_t> col8{0, 1, 127, 128, 255};
  auto packed8 = ops::Pack(col8, 8);
  ASSERT_TRUE(packed8.ok());
  EXPECT_EQ(*ops::Unpack<uint8_t>(*packed8), col8);

  Column<uint16_t> col16{0, 65535, 1, 32768};
  auto packed16 = ops::Pack(col16, 16);
  ASSERT_TRUE(packed16.ok());
  EXPECT_EQ(*ops::Unpack<uint16_t>(*packed16), col16);
}


TEST(UnpackRangeTest, MatchesFullUnpack) {
  Rng rng(21);
  Column<uint32_t> col;
  for (int i = 0; i < 5000; ++i) {
    col.push_back(static_cast<uint32_t>(rng.Below(1u << 19)));
  }
  auto packed = ops::Pack(col, 19);
  ASSERT_TRUE(packed.ok());
  Column<uint32_t> buffer(col.size());
  for (auto [begin, end] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 5000}, {0, 1}, {4999, 5000}, {1234, 1234}, {100, 3100}}) {
    ASSERT_TRUE(ops::UnpackRange(*packed, begin, end, buffer.data()).ok());
    for (uint64_t i = begin; i < end; ++i) {
      ASSERT_EQ(buffer[i - begin], col[i]) << begin << ".." << end << "@" << i;
    }
  }
}

TEST(UnpackRangeTest, SweepsAllWidths) {
  Rng rng(22);
  for (int width = 0; width <= 64; width += 3) {
    Column<uint64_t> col;
    const uint64_t mask = bits::LowMask64(width);
    for (int i = 0; i < 300; ++i) col.push_back(rng.Next() & mask);
    auto packed = ops::Pack(col, width);
    ASSERT_TRUE(packed.ok());
    Column<uint64_t> buffer(col.size());
    const uint64_t begin = 17, end = 283;
    ASSERT_TRUE(ops::UnpackRange(*packed, begin, end, buffer.data()).ok());
    for (uint64_t i = begin; i < end; ++i) {
      ASSERT_EQ(buffer[i - begin], col[i]) << "width " << width;
    }
  }
}

/// Regression for the width-generic kernels: every width, non-byte-aligned
/// begins, both dispatch paths — UnpackRange and UnpackOne must match the
/// full unpack element for element.
class UnpackRangeSweep32 : public ::testing::TestWithParam<int> {};

TEST_P(UnpackRangeSweep32, AllBeginsBothPaths) {
  const int width = GetParam();
  Rng rng(3000 + width);
  const uint32_t mask = bits::LowMask32(width);
  Column<uint32_t> col;
  for (int i = 0; i < 1000; ++i) {
    col.push_back(static_cast<uint32_t>(rng.Next()) & mask);
  }
  auto packed = ops::Pack(col, width);
  ASSERT_TRUE(packed.ok());
  Column<uint32_t> buffer(col.size());
  for (const bool scalar : {false, true}) {
    ops::ForceScalar(scalar);
    for (auto [begin, end] : std::vector<std::pair<uint64_t, uint64_t>>{
             {0, 1000}, {0, 1}, {1, 2}, {3, 11}, {7, 1000}, {641, 642},
             {333, 999}, {999, 1000}, {500, 500}}) {
      ASSERT_TRUE(ops::UnpackRange(*packed, begin, end, buffer.data()).ok());
      for (uint64_t i = begin; i < end; ++i) {
        ASSERT_EQ(buffer[i - begin], col[i])
            << "width=" << width << " scalar=" << scalar << " ["
            << begin << "," << end << ")@" << i;
      }
    }
    for (uint64_t i : {uint64_t{0}, uint64_t{1}, uint64_t{511},
                       uint64_t{999}}) {
      ASSERT_EQ(ops::UnpackOne<uint32_t>(*packed, i), col[i])
          << "width=" << width << " scalar=" << scalar << " i=" << i;
    }
  }
  ops::ForceScalar(false);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, UnpackRangeSweep32,
                         ::testing::Range(0, 33));

class UnpackRangeSweep64 : public ::testing::TestWithParam<int> {};

TEST_P(UnpackRangeSweep64, AllBeginsBothPaths) {
  const int width = GetParam();
  Rng rng(4000 + width);
  const uint64_t mask = bits::LowMask64(width);
  Column<uint64_t> col;
  for (int i = 0; i < 500; ++i) col.push_back(rng.Next() & mask);
  auto packed = ops::Pack(col, width);
  ASSERT_TRUE(packed.ok());
  Column<uint64_t> buffer(col.size());
  for (const bool scalar : {false, true}) {
    ops::ForceScalar(scalar);
    for (auto [begin, end] : std::vector<std::pair<uint64_t, uint64_t>>{
             {0, 500}, {0, 1}, {1, 6}, {17, 283}, {499, 500}, {250, 250}}) {
      ASSERT_TRUE(ops::UnpackRange(*packed, begin, end, buffer.data()).ok());
      for (uint64_t i = begin; i < end; ++i) {
        ASSERT_EQ(buffer[i - begin], col[i])
            << "width=" << width << " scalar=" << scalar << " ["
            << begin << "," << end << ")@" << i;
      }
    }
    for (uint64_t i : {uint64_t{0}, uint64_t{63}, uint64_t{499}}) {
      ASSERT_EQ(ops::UnpackOne<uint64_t>(*packed, i), col[i])
          << "width=" << width << " scalar=" << scalar << " i=" << i;
    }
  }
  ops::ForceScalar(false);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, UnpackRangeSweep64,
                         ::testing::Range(0, 65));

TEST(UnpackRangeTest, BoundsValidated) {
  Column<uint32_t> col{1, 2, 3};
  auto packed = ops::Pack(col, 4);
  ASSERT_TRUE(packed.ok());
  Column<uint32_t> buffer(4);
  EXPECT_FALSE(ops::UnpackRange(*packed, 2, 1, buffer.data()).ok());
  EXPECT_FALSE(ops::UnpackRange(*packed, 0, 4, buffer.data()).ok());
  Column<uint16_t> narrow(3);
  auto wide = ops::Pack(Column<uint32_t>{1 << 20}, 21);
  ASSERT_TRUE(wide.ok());
  EXPECT_FALSE(ops::UnpackRange(*wide, 0, 1, narrow.data()).ok());
}

}  // namespace
}  // namespace recomp
