// Tests for the order-preserving DICT scheme.

#include <gtest/gtest.h>

#include <algorithm>

#include "schemes/scheme.h"
#include "test_util.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;
using testutil::UniformColumn;

TEST(DictSchemeTest, DictionaryIsSortedUnique) {
  Column<uint32_t> col{30, 10, 30, 20, 10};
  auto compressed = Compress(AnyColumn(col), Dict());
  ASSERT_OK(compressed.status());
  const auto& dict =
      compressed->root().parts.at("dictionary").column->As<uint32_t>();
  EXPECT_EQ(dict, (Column<uint32_t>{10, 20, 30}));
  const auto& codes =
      compressed->root().parts.at("codes").column->As<uint32_t>();
  EXPECT_EQ(codes, (Column<uint32_t>{2, 0, 2, 1, 0}));
}

TEST(DictSchemeTest, RoundTripVariousTypes) {
  ExpectRoundTrip(AnyColumn(UniformColumn<uint64_t>(5000, 100, 31)), Dict());
  ExpectRoundTrip(AnyColumn(Column<int32_t>{-5, 3, -5, 0, 3}), Dict());
  ExpectRoundTrip(AnyColumn(Column<uint8_t>{1, 2, 1}), Dict());
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}), Dict());
}

TEST(DictSchemeTest, CodesPackUnderNs) {
  // Exactly 16 distinct values -> codes 0..15 -> 4-bit codes under NS.
  Column<uint32_t> col = UniformColumn<uint32_t>(10000, 16, 32);
  for (uint32_t i = 0; i < 16; ++i) col.push_back(i);  // ensure all present
  for (auto& v : col) v = v * 1000003 + 17;            // sparse domain
  CompressedColumn c =
      ExpectRoundTrip(AnyColumn(col), Dict().With("codes", Ns()));
  const SchemeDescriptor desc = c.Descriptor();
  EXPECT_EQ(desc.children.at("codes").params.width, 4);
}

TEST(DictSchemeTest, CorruptCodeDetected) {
  Column<uint32_t> col{5, 5, 9};
  auto compressed = Compress(AnyColumn(col), Dict());
  ASSERT_OK(compressed.status());
  auto& codes = compressed->root().parts.at("codes").column->As<uint32_t>();
  codes[0] = 100;  // beyond dictionary
  EXPECT_EQ(Decompress(*compressed).status().code(), StatusCode::kCorruption);
}

TEST(DictSchemeTest, OrderPreservation) {
  // Sorted dictionary makes code order mirror value order - the property
  // exec/selection relies on for pushdown.
  Column<uint64_t> col = UniformColumn<uint64_t>(2000, 1u << 20, 33);
  auto compressed = Compress(AnyColumn(col), Dict());
  ASSERT_OK(compressed.status());
  const auto& dict =
      compressed->root().parts.at("dictionary").column->As<uint64_t>();
  EXPECT_TRUE(std::is_sorted(dict.begin(), dict.end()));
  EXPECT_TRUE(std::adjacent_find(dict.begin(), dict.end()) == dict.end());
}

}  // namespace
}  // namespace recomp
