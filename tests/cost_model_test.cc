// Tests for the decompression cost model: relative orderings the analyzer's
// budget filter relies on.

#include <gtest/gtest.h>

#include "columnar/stats.h"
#include "core/catalog.h"
#include "core/cost_model.h"
#include "gen/generators.h"

namespace recomp {
namespace {

ColumnStats StatsFor(const Column<uint32_t>& col) { return ComputeStats(col); }

TEST(CostModelTest, UnitCostsAreOrderedSensibly) {
  // ID is near-free; VBYTE is the most expensive primitive (data-dependent
  // branching); NS is the unit.
  EXPECT_LT(SchemeKindUnitCost(SchemeKind::kId),
            SchemeKindUnitCost(SchemeKind::kNs));
  EXPECT_DOUBLE_EQ(SchemeKindUnitCost(SchemeKind::kNs), 1.0);
  EXPECT_GT(SchemeKindUnitCost(SchemeKind::kVByte),
            SchemeKindUnitCost(SchemeKind::kDelta));
  EXPECT_GT(SchemeKindUnitCost(SchemeKind::kPlin),
            SchemeKindUnitCost(SchemeKind::kStep));
}

TEST(CostModelTest, CompositionAddsCost) {
  ColumnStats stats = StatsFor(gen::Uniform(1000, 1000, 1));
  const double ns = EstimateDecompressionCost(Ns(), stats);
  const double delta_ns = EstimateDecompressionCost(MakeDeltaNs(), stats);
  EXPECT_GT(delta_ns, ns);
}

TEST(CostModelTest, RunLevelWorkAmortizes) {
  // The same RLE descriptor costs less per value on longer runs: the
  // per-run children amortize.
  ColumnStats short_runs = StatsFor(gen::SortedRuns(20000, 2.0, 3, 2));
  ColumnStats long_runs = StatsFor(gen::SortedRuns(20000, 200.0, 3, 3));
  const double on_short = EstimateDecompressionCost(MakeRleNs(), short_runs);
  const double on_long = EstimateDecompressionCost(MakeRleNs(), long_runs);
  EXPECT_GT(on_short, on_long);
}

TEST(CostModelTest, ModelRefsAmortizeBySegmentLength) {
  ColumnStats stats = StatsFor(gen::StepLevels(20000, 512, 20, 5, 4));
  // A hypothetical FOR whose refs are themselves compressed: the refs
  // child's cost shrinks with the segment length.
  SchemeDescriptor small = Modeled(Step(64)).With("residual", Ns())
                               .With("refs", VByte());
  SchemeDescriptor large = Modeled(Step(4096)).With("residual", Ns())
                               .With("refs", VByte());
  EXPECT_GT(EstimateDecompressionCost(small, stats),
            EstimateDecompressionCost(large, stats));
}

TEST(CostModelTest, FusedCascadeDiscountsBelowOperatorSum) {
  // DELTA{ZIGZAG{NS}} decodes through one fused register-to-register pass,
  // so it prices below the sum of its operators — specifically below the
  // 1.5 "NS plus a little" budget that used to exclude it (the old price
  // was exactly the operator sum, 2.5).
  ColumnStats stats = StatsFor(gen::Uniform(1000, 1000, 1));
  const double operator_sum = SchemeKindUnitCost(SchemeKind::kDelta) +
                              SchemeKindUnitCost(SchemeKind::kZigZag) +
                              SchemeKindUnitCost(SchemeKind::kNs);
  EXPECT_GT(operator_sum, 1.5);
  EXPECT_LT(EstimateDecompressionCost(MakeDeltaNs(), stats), 1.5);
  // NS itself is discounted but stays the relative unit's neighborhood.
  EXPECT_LT(EstimateDecompressionCost(Ns(), stats), 1.0);
  // A shape with no fused kernel still pays full price.
  EXPECT_DOUBLE_EQ(EstimateDecompressionCost(MakeDeltaVByte(), stats),
                   SchemeKindUnitCost(SchemeKind::kDelta) +
                       SchemeKindUnitCost(SchemeKind::kZigZag) +
                       SchemeKindUnitCost(SchemeKind::kVByte));
}

TEST(CostModelTest, RpeCheaperThanRleOnPlanDepth) {
  // RPE (positions stored) prices below RLE (positions DELTA-compressed):
  // the §II-A trade in cost-model terms.
  ColumnStats stats = StatsFor(gen::SortedRuns(20000, 30.0, 3, 5));
  EXPECT_LT(EstimateDecompressionCost(Rpe(), stats),
            EstimateDecompressionCost(MakeRle(), stats));
}

}  // namespace
}  // namespace recomp
