// Integration tests for the composition pipeline: arbitrary descriptor trees
// compress/decompress losslessly, envelopes are self-describing, and errors
// surface cleanly. Includes the parameterized roundtrip sweep across
// (descriptor × workload) — invariant 1 of DESIGN.md.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;
using testutil::RunsColumn;
using testutil::UniformColumn;

TEST(PipelineTest, UnknownChildPartRejected) {
  auto result =
      Compress(AnyColumn(Column<uint32_t>{1}), Rpe().With("nope", Ns()));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nope"), std::string::npos);
}

TEST(PipelineTest, ComposingPastPackedRejected) {
  // NS output is bit-packed; there is no plain column left to compose with.
  auto result = Compress(AnyColumn(Column<uint32_t>{1}),
                         Ns().With("packed", Delta()));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, EnvelopeRecordsResolvedDescriptor) {
  Column<uint32_t> col = UniformColumn<uint32_t>(1000, 1 << 9, 81);
  auto compressed = Compress(AnyColumn(col), Dict().With("codes", Ns()));
  ASSERT_OK(compressed.status());
  SchemeDescriptor desc = compressed->Descriptor();
  EXPECT_EQ(desc.kind, SchemeKind::kDict);
  ASSERT_EQ(desc.children.count("codes"), 1u);
  EXPECT_GT(desc.children.at("codes").params.width, 0);
}

TEST(PipelineTest, DescriptorStringSurvivesCompression) {
  // Parse -> compress -> envelope descriptor -> string: a fixed point after
  // parameter resolution.
  auto desc = SchemeDescriptor::Parse(
      "RPE{positions:DELTA{deltas:NS},values:DELTA{deltas:ZIGZAG{recoded:NS}}}");
  ASSERT_OK(desc.status());
  Column<uint32_t> col = RunsColumn(5000, 0.05, 82);
  auto compressed = Compress(AnyColumn(col), *desc);
  ASSERT_OK(compressed.status());
  auto reparsed = SchemeDescriptor::Parse(compressed->Descriptor().ToString());
  ASSERT_OK(reparsed.status());
  EXPECT_EQ(*reparsed, compressed->Descriptor());
}

TEST(PipelineTest, CloneIsDeepAndEqualBytes) {
  Column<uint32_t> col = RunsColumn(2000, 0.1, 83);
  auto compressed =
      Compress(AnyColumn(col), Rpe().With("positions", Delta()));
  ASSERT_OK(compressed.status());
  CompressedColumn clone = compressed->Clone();
  EXPECT_EQ(clone.PayloadBytes(), compressed->PayloadBytes());
  // Mutating the clone must not affect the original.
  clone.root().parts.at("values").column->As<uint32_t>()[0] += 1;
  auto original_back = Decompress(*compressed);
  ASSERT_OK(original_back.status());
  EXPECT_EQ(original_back->As<uint32_t>(), col);
}

TEST(PipelineTest, ToStringShowsTree) {
  Column<uint32_t> col = RunsColumn(1000, 0.1, 84);
  auto compressed = Compress(
      AnyColumn(col),
      Rpe().With("positions", Delta().With("deltas", Ns())));
  ASSERT_OK(compressed.status());
  const std::string dump = compressed->ToString();
  EXPECT_NE(dump.find("RPE"), std::string::npos);
  EXPECT_NE(dump.find("positions"), std::string::npos);
  EXPECT_NE(dump.find("packed"), std::string::npos);
}

TEST(PipelineTest, InvalidDescriptorRejectedBeforeWork) {
  SchemeDescriptor bad(SchemeKind::kModeled);  // missing model arg
  EXPECT_FALSE(Compress(AnyColumn(Column<uint32_t>{1}), bad).ok());
}

// ---------------------------------------------------------------------------
// Parameterized roundtrip sweep: every catalog-shaped descriptor against
// every workload shape.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* descriptor;
  const char* workload;  // "runs", "uniform_narrow", "uniform_wide", "trend"
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = std::string(info.param.workload) + "_";
  for (char c : std::string(info.param.descriptor)) {
    name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  if (name.size() > 100) name.resize(100);
  return name + std::to_string(info.index);
}

Column<uint32_t> MakeWorkload(const std::string& which, uint64_t seed) {
  if (which == "runs") return RunsColumn(20000, 0.03, seed);
  if (which == "uniform_narrow") {
    return UniformColumn<uint32_t>(20000, 1 << 10, seed);
  }
  if (which == "uniform_wide") {
    return UniformColumn<uint32_t>(20000, ~uint32_t{0}, seed);
  }
  // trend
  Rng rng(seed);
  Column<uint32_t> col;
  for (uint64_t i = 0; i < 20000; ++i) {
    col.push_back(static_cast<uint32_t>(17 + 2.5 * i + rng.Below(32)));
  }
  return col;
}

class RoundTripSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RoundTripSweep, Lossless) {
  const SweepCase& param = GetParam();
  auto desc = SchemeDescriptor::Parse(param.descriptor);
  ASSERT_OK(desc.status());
  for (uint64_t seed : {101u, 202u}) {
    Column<uint32_t> col = MakeWorkload(param.workload, seed);
    ExpectRoundTrip(AnyColumn(col), *desc);
  }
}

constexpr const char* kDescriptors[] = {
    "ID",
    "NS",
    "VBYTE",
    "DELTA",
    "DELTA{deltas:ZIGZAG{recoded:NS}}",
    "DELTA{deltas:ZIGZAG{recoded:VBYTE}}",
    "RPE",
    "RPE{positions:DELTA}",
    "RPE{positions:DELTA{deltas:NS},values:DELTA{deltas:ZIGZAG{recoded:NS}}}",
    "DICT{codes:NS}",
    "MODELED(STEP(128)){residual:NS}",
    "MODELED(STEP(1024)){residual:PATCHED{base:NS}}",
    "MODELED(PLIN(256)){residual:NS}",
    "PATCHED{base:NS}",
};

constexpr const char* kWorkloads[] = {"runs", "uniform_narrow", "uniform_wide",
                                      "trend"};

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  for (const char* desc : kDescriptors) {
    for (const char* workload : kWorkloads) {
      cases.push_back({desc, workload});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(DescriptorsTimesWorkloads, RoundTripSweep,
                         ::testing::ValuesIn(AllSweepCases()), SweepName);

// Types other than uint32 through a deep composite.
TEST(PipelineTest, DeepCompositeUint64) {
  Rng rng(85);
  Column<uint64_t> col;
  uint64_t v = uint64_t{1} << 45;
  for (int i = 0; i < 30000; ++i) {
    if (rng.Bernoulli(0.02)) v += rng.Below(100);
    col.push_back(v);
  }
  ExpectRoundTrip(
      AnyColumn(col),
      Rpe()
          .With("positions", Delta().With("deltas", Ns()))
          .With("values", Delta().With("deltas", ZigZag().With("recoded",
                                                               VByte()))));
}

TEST(PipelineTest, DeepCompositeUint16) {
  Column<uint16_t> col = UniformColumn<uint16_t>(10000, 64, 86);
  ExpectRoundTrip(AnyColumn(col), Dict().With("codes", Ns()));
}

}  // namespace
}  // namespace recomp
