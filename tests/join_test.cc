// Tests for the compressed-domain semi-join: every pushdown strategy must
// equal the decompress-then-probe reference over randomized key sets.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "exec/join.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

Column<uint64_t> MakeKeys(const Column<uint32_t>& col, double hit_rate,
                          uint64_t extra, uint64_t seed) {
  Rng rng(seed);
  Column<uint64_t> keys;
  for (const uint32_t v : col) {
    if (rng.Bernoulli(hit_rate)) keys.push_back(v);
  }
  for (uint64_t i = 0; i < extra; ++i) {
    keys.push_back(rng.Next());  // Mostly misses.
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

Column<uint32_t> ReferenceSemiJoin(const Column<uint32_t>& col,
                                   const Column<uint64_t>& keys) {
  Column<uint32_t> out;
  for (uint64_t i = 0; i < col.size(); ++i) {
    if (std::binary_search(keys.begin(), keys.end(), col[i])) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

void ExpectSemiJoin(const Column<uint32_t>& col, const SchemeDescriptor& desc,
                    exec::Strategy expected_strategy, uint64_t seed) {
  auto compressed = Compress(AnyColumn(col), desc);
  ASSERT_OK(compressed.status());
  for (double hit_rate : {0.0, 0.01, 0.3}) {
    Column<uint64_t> keys = MakeKeys(col, hit_rate, 50, seed);
    auto result = exec::SemiJoinCompressed(*compressed, keys);
    ASSERT_OK(result.status()) << desc.ToString();
    EXPECT_EQ(result->strategy, expected_strategy);
    EXPECT_EQ(result->positions, ReferenceSemiJoin(col, keys))
        << desc.ToString() << " hit_rate=" << hit_rate;
  }
}

TEST(SemiJoinTest, RleRuns) {
  ExpectSemiJoin(gen::SortedRuns(20000, 40.0, 3, 1), MakeRle(),
                 exec::Strategy::kRleRuns, 11);
}

TEST(SemiJoinTest, DictProbesDictionaryNotRows) {
  Column<uint32_t> col = gen::ZipfValues(50000, 200, 1.1, 2);
  auto compressed = Compress(AnyColumn(col), MakeDictNs());
  ASSERT_OK(compressed.status());
  Column<uint64_t> keys = MakeKeys(col, 0.1, 20, 12);
  auto result = exec::SemiJoinCompressed(*compressed, keys);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->strategy, exec::Strategy::kDictProbe);
  EXPECT_LE(result->probes, 200u);  // One per dictionary entry, not per row.
  EXPECT_EQ(result->positions, ReferenceSemiJoin(col, keys));
}

TEST(SemiJoinTest, StepPrunedSkipsSegments) {
  Column<uint32_t> col = gen::StepLevels(65536, 512, 24, 6, 3);
  auto compressed = Compress(AnyColumn(col), MakeFor(512));
  ASSERT_OK(compressed.status());
  // A handful of keys: almost every segment window misses all of them.
  Column<uint64_t> keys = {col[100], col[40000], uint64_t{1} << 40};
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  auto result = exec::SemiJoinCompressed(*compressed, keys);
  ASSERT_OK(result.status());
  EXPECT_EQ(result->strategy, exec::Strategy::kStepPruned);
  EXPECT_LT(result->probes, col.size() / 8);  // Most segments never decoded.
  EXPECT_EQ(result->positions, ReferenceSemiJoin(col, keys));
}

TEST(SemiJoinTest, FallbackScan) {
  ExpectSemiJoin(gen::Uniform(10000, 1 << 20, 4), MakeDeltaNs(),
                 exec::Strategy::kDecompressScan, 13);
}

TEST(SemiJoinTest, EmptyKeySetAndEmptyColumn) {
  Column<uint32_t> col = gen::Uniform(100, 100, 5);
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  auto none = exec::SemiJoinCompressed(*compressed, {});
  ASSERT_OK(none.status());
  EXPECT_TRUE(none->positions.empty());

  auto empty_col = Compress(AnyColumn(Column<uint32_t>{}), Rpe());
  ASSERT_OK(empty_col.status());
  auto empty = exec::SemiJoinCompressed(*empty_col, Column<uint64_t>{1, 2});
  ASSERT_OK(empty.status());
  EXPECT_TRUE(empty->positions.empty());
}

TEST(SemiJoinTest, UnsortedKeysRejected) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{1}), Rpe());
  ASSERT_OK(compressed.status());
  EXPECT_FALSE(
      exec::SemiJoinCompressed(*compressed, Column<uint64_t>{2, 1}).ok());
  EXPECT_FALSE(
      exec::SemiJoinCompressed(*compressed, Column<uint64_t>{1, 1}).ok());
}

TEST(SemiJoinTest, RandomizedAgreement) {
  Rng rng(6);
  const std::vector<SchemeDescriptor> descriptors = {
      MakeRle(), MakeDictNs(), MakeFor(128), Ns()};
  for (int trial = 0; trial < 8; ++trial) {
    Column<uint32_t> col =
        gen::SortedRuns(2000 + rng.Below(3000), 5.0, 4, rng.Next());
    Column<uint64_t> keys = MakeKeys(col, rng.NextDouble() * 0.5, 30,
                                     rng.Next());
    const Column<uint32_t> expected = ReferenceSemiJoin(col, keys);
    for (const SchemeDescriptor& desc : descriptors) {
      auto compressed = Compress(AnyColumn(col), desc);
      ASSERT_OK(compressed.status());
      auto result = exec::SemiJoinCompressed(*compressed, keys);
      ASSERT_OK(result.status()) << desc.ToString();
      EXPECT_EQ(result->positions, expected) << desc.ToString();
    }
  }
}

}  // namespace
}  // namespace recomp
