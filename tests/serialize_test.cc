// Tests for binary serialization: roundtrips across the catalog, exact size
// accounting, and hostile-input robustness (truncation, bit flips, bad
// headers must produce Corruption, never crashes or bogus data).

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/serialize.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

CompressedColumn RoundTripThroughBytes(const CompressedColumn& original) {
  auto buffer = Serialize(original);
  EXPECT_OK(buffer.status());
  EXPECT_EQ(buffer->size(), SerializedSize(original));
  auto restored = Deserialize(*buffer);
  EXPECT_OK(restored.status());
  return std::move(*restored);
}

TEST(SerializeTest, RoundTripsEveryCatalogEntry) {
  Column<uint32_t> col = gen::SortedRuns(20000, 20.0, 3, 1);
  for (const CatalogEntry& entry : ClassicCatalog()) {
    auto compressed = Compress(AnyColumn(col), entry.descriptor);
    ASSERT_OK(compressed.status()) << entry.name;
    CompressedColumn restored = RoundTripThroughBytes(*compressed);
    EXPECT_EQ(restored.Descriptor(), compressed->Descriptor()) << entry.name;
    EXPECT_EQ(restored.PayloadBytes(), compressed->PayloadBytes());
    auto back = Decompress(restored);
    ASSERT_OK(back.status()) << entry.name;
    EXPECT_EQ(back->As<uint32_t>(), col) << entry.name;
  }
}

TEST(SerializeTest, RoundTripsAllTypesAndEmpty) {
  for (const AnyColumn& input :
       {AnyColumn(Column<uint8_t>{1, 2, 255}),
        AnyColumn(Column<uint64_t>{~uint64_t{0}, 0}),
        AnyColumn(Column<int32_t>{-5, 5}),
        AnyColumn(Column<uint32_t>{})}) {
    auto compressed = Compress(input, Rpe());
    ASSERT_OK(compressed.status());
    CompressedColumn restored = RoundTripThroughBytes(*compressed);
    auto back = Decompress(restored);
    ASSERT_OK(back.status());
    EXPECT_TRUE(*back == input);
  }
}

TEST(SerializeTest, BufferIsCloseToPayload) {
  // The envelope overhead must be O(nodes), not O(n).
  Column<uint32_t> col = gen::Uniform(100000, 1 << 20, 2);
  auto compressed = Compress(AnyColumn(col), MakeFor(1024));
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  EXPECT_LT(buffer->size(), compressed->PayloadBytes() + 1024);
}

TEST(SerializeTest, BadMagicRejected) {
  Column<uint32_t> col{1, 2, 3};
  auto compressed = Compress(AnyColumn(col), Ns());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  (*buffer)[0] = 'X';
  EXPECT_EQ(Deserialize(*buffer).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, BadVersionRejected) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{1}), Ns());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  (*buffer)[4] = 0xFF;
  EXPECT_EQ(Deserialize(*buffer).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, EveryTruncationRejected) {
  Column<uint32_t> col = gen::SortedRuns(500, 10.0, 2, 3);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  // Every proper prefix must fail cleanly (stride keeps the test fast).
  for (size_t len = 0; len < buffer->size(); len += 7) {
    std::vector<uint8_t> prefix(buffer->begin(), buffer->begin() + len);
    auto restored = Deserialize(prefix);
    EXPECT_FALSE(restored.ok()) << "prefix length " << len;
  }
}

TEST(SerializeTest, TrailingBytesRejected) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{1, 2}), Ns());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  buffer->push_back(0);
  EXPECT_EQ(Deserialize(*buffer).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RandomBitFlipsNeverCrash) {
  // Fuzz-lite: flip one byte at a time; deserialization either fails
  // cleanly or yields an envelope whose decompression also behaves (errors
  // or produces *some* column) - it must never crash or hang.
  Column<uint32_t> col = gen::SortedRuns(300, 5.0, 2, 4);
  auto compressed = Compress(AnyColumn(col), MakeRleNs());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupted = *buffer;
    corrupted[rng.Below(corrupted.size())] ^=
        static_cast<uint8_t>(1 + rng.Below(255));
    auto restored = Deserialize(corrupted);
    if (restored.ok()) {
      auto back = Decompress(*restored);  // Either is acceptable.
      (void)back;
    }
  }
  SUCCEED();
}

TEST(SerializeTest, EmptyBufferRejected) {
  EXPECT_FALSE(Deserialize({}).ok());
}

}  // namespace
}  // namespace recomp
