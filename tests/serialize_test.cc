// Tests for binary serialization: roundtrips across the catalog, exact size
// accounting, and hostile-input robustness (truncation, bit flips, bad
// headers must produce Corruption, never crashes or bogus data).

#include <gtest/gtest.h>

#include <cstring>
#include <future>

#include "core/catalog.h"
#include "core/serialize.h"
#include "gen/generators.h"
#include "store/recompress.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

CompressedColumn RoundTripThroughBytes(const CompressedColumn& original) {
  auto buffer = Serialize(original);
  EXPECT_OK(buffer.status());
  EXPECT_EQ(buffer->size(), SerializedSize(original));
  auto restored = Deserialize(*buffer);
  EXPECT_OK(restored.status());
  return std::move(*restored);
}

TEST(SerializeTest, RoundTripsEveryCatalogEntry) {
  Column<uint32_t> col = gen::SortedRuns(20000, 20.0, 3, 1);
  for (const CatalogEntry& entry : ClassicCatalog()) {
    auto compressed = Compress(AnyColumn(col), entry.descriptor);
    ASSERT_OK(compressed.status()) << entry.name;
    CompressedColumn restored = RoundTripThroughBytes(*compressed);
    EXPECT_EQ(restored.Descriptor(), compressed->Descriptor()) << entry.name;
    EXPECT_EQ(restored.PayloadBytes(), compressed->PayloadBytes());
    auto back = Decompress(restored);
    ASSERT_OK(back.status()) << entry.name;
    EXPECT_EQ(back->As<uint32_t>(), col) << entry.name;
  }
}

TEST(SerializeTest, RoundTripsAllTypesAndEmpty) {
  for (const AnyColumn& input :
       {AnyColumn(Column<uint8_t>{1, 2, 255}),
        AnyColumn(Column<uint64_t>{~uint64_t{0}, 0}),
        AnyColumn(Column<int32_t>{-5, 5}),
        AnyColumn(Column<uint32_t>{})}) {
    auto compressed = Compress(input, Rpe());
    ASSERT_OK(compressed.status());
    CompressedColumn restored = RoundTripThroughBytes(*compressed);
    auto back = Decompress(restored);
    ASSERT_OK(back.status());
    EXPECT_TRUE(*back == input);
  }
}

TEST(SerializeTest, BufferIsCloseToPayload) {
  // The envelope overhead must be O(nodes), not O(n).
  Column<uint32_t> col = gen::Uniform(100000, 1 << 20, 2);
  auto compressed = Compress(AnyColumn(col), MakeFor(1024));
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  EXPECT_LT(buffer->size(), compressed->PayloadBytes() + 1024);
}

TEST(SerializeTest, BadMagicRejected) {
  Column<uint32_t> col{1, 2, 3};
  auto compressed = Compress(AnyColumn(col), Ns());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  (*buffer)[0] = 'X';
  EXPECT_EQ(Deserialize(*buffer).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, BadVersionRejected) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{1}), Ns());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  (*buffer)[4] = 0xFF;
  EXPECT_EQ(Deserialize(*buffer).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, EveryTruncationRejected) {
  Column<uint32_t> col = gen::SortedRuns(500, 10.0, 2, 3);
  auto compressed = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  // Every proper prefix must fail cleanly (stride keeps the test fast).
  for (size_t len = 0; len < buffer->size(); len += 7) {
    std::vector<uint8_t> prefix(buffer->begin(), buffer->begin() + len);
    auto restored = Deserialize(prefix);
    EXPECT_FALSE(restored.ok()) << "prefix length " << len;
  }
}

TEST(SerializeTest, TrailingBytesRejected) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{1, 2}), Ns());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  buffer->push_back(0);
  EXPECT_EQ(Deserialize(*buffer).status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RandomBitFlipsNeverCrash) {
  // Fuzz-lite: flip one byte at a time; deserialization either fails
  // cleanly or yields an envelope whose decompression also behaves (errors
  // or produces *some* column) - it must never crash or hang.
  Column<uint32_t> col = gen::SortedRuns(300, 5.0, 2, 4);
  auto compressed = Compress(AnyColumn(col), MakeRleNs());
  ASSERT_OK(compressed.status());
  auto buffer = Serialize(*compressed);
  ASSERT_OK(buffer.status());
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupted = *buffer;
    corrupted[rng.Below(corrupted.size())] ^=
        static_cast<uint8_t>(1 + rng.Below(255));
    auto restored = Deserialize(corrupted);
    if (restored.ok()) {
      auto back = Decompress(*restored);  // Either is acceptable.
      (void)back;
    }
  }
  SUCCEED();
}

TEST(SerializeTest, EmptyBufferRejected) {
  EXPECT_FALSE(Deserialize({}).ok());
}

// ---------------------------------------------------------------------------
// Malformed v2 chunk directories
// ---------------------------------------------------------------------------

// v2 layout offsets (serialize.h): magic(4) + version(2) + out_type(1) +
// total_rows(8) + chunk_count(4) = 19 header bytes, then 41-byte directory
// entries { row_begin(8), row_count(8), has_minmax(1), min(8), max(8),
// node_bytes(8) }.
constexpr size_t kV2HeaderBytes = 19;
constexpr size_t kV2EntryBytes = 41;

size_t EntryOffset(size_t chunk, size_t field_offset) {
  return kV2HeaderBytes + chunk * kV2EntryBytes + field_offset;
}

void PokeU64(std::vector<uint8_t>& buffer, size_t offset, uint64_t value) {
  ASSERT_LE(offset + 8, buffer.size());
  std::memcpy(buffer.data() + offset, &value, 8);
}

/// A 3-chunk v2 buffer over [0, 12) with 4 rows per chunk.
std::vector<uint8_t> SmallChunkedBuffer() {
  Column<uint32_t> col;
  for (uint32_t i = 0; i < 12; ++i) col.push_back(i * 7 + 1);
  auto chunked = CompressChunked(AnyColumn(col), Ns(), {4});
  EXPECT_OK(chunked.status());
  auto buffer = Serialize(*chunked);
  EXPECT_OK(buffer.status());
  return *buffer;
}

TEST(SerializeTest, V2OverlappingChunksRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  // Chunk 1 claims to start inside chunk 0's rows.
  PokeU64(buffer, EntryOffset(1, 0), 2);
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, V2NonContiguousChunksRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  // Chunk 2 leaves a gap after chunk 1's rows.
  PokeU64(buffer, EntryOffset(2, 0), 9);
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, V2NonzeroFirstRowBeginRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  PokeU64(buffer, EntryOffset(0, 0), 1);
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, V2RowCountDisagreeingWithHeaderRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  // The last chunk shrinks: the directory no longer tiles [0, total_rows).
  PokeU64(buffer, EntryOffset(2, 8), 3);
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, V2RowCountOverflowRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  PokeU64(buffer, EntryOffset(1, 8), ~uint64_t{0} - 1);
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, V2EmptyDirectoryRejected) {
  // The writer always emits at least one chunk, so a zero-chunk directory is
  // corrupt whether or not the header claims rows.
  for (const uint8_t rows : {uint8_t{5}, uint8_t{0}}) {
    // Hand-built header: magic, version 2, uint32 type, rows, zero chunks.
    std::vector<uint8_t> buffer = {'R', 'C', 'M', 'P'};
    buffer.push_back(2);
    buffer.push_back(0);  // u16 version = 2.
    buffer.push_back(static_cast<uint8_t>(TypeId::kUInt32));
    for (int i = 0; i < 8; ++i) buffer.push_back(i == 0 ? rows : 0);  // u64.
    for (int i = 0; i < 4; ++i) buffer.push_back(0);  // u32 chunk_count = 0.
    auto restored = DeserializeChunked(buffer);
    EXPECT_EQ(restored.status().code(), StatusCode::kCorruption)
        << "rows=" << static_cast<int>(rows);
  }
}

TEST(SerializeTest, V2NodeBytesPastBufferRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  // A payload length reaching past the end of the buffer must be rejected
  // from the directory alone, before any chunk payload is parsed.
  PokeU64(buffer, EntryOffset(1, 33), buffer.size());
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, V2NodeBytesSumOverflowRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  // Lengths whose sum wraps around 2^64 must not bypass the bounds check.
  PokeU64(buffer, EntryOffset(0, 33), ~uint64_t{0} / 2 + 1);
  PokeU64(buffer, EntryOffset(1, 33), ~uint64_t{0} / 2 + 1);
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, V2NodeBytesDisagreeingWithPayloadRejected) {
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  // Shift one byte of claimed length from chunk 0 to chunk 1: the total
  // still fits, but each chunk's parsed length disagrees with its entry.
  size_t off0 = EntryOffset(0, 33);
  uint64_t n0;
  std::memcpy(&n0, buffer.data() + off0, 8);
  PokeU64(buffer, off0, n0 - 1);
  size_t off1 = EntryOffset(1, 33);
  uint64_t n1;
  std::memcpy(&n1, buffer.data() + off1, 8);
  PokeU64(buffer, off1, n1 + 1);
  auto restored = DeserializeChunked(buffer);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Parallel deserialization
// ---------------------------------------------------------------------------

TEST(SerializeTest, ParallelDeserializeChunkedAgreesWithSequential) {
  // The per-chunk payload parses fan out over the pool; the restored column
  // must be structurally identical to the sequential parse for any thread
  // count and grain.
  Column<uint32_t> col = gen::SortedRuns(40000, 15.0, 3, 29);
  {
    Column<uint32_t> noise = gen::Uniform(20000, uint64_t{1} << 24, 30);
    col.insert(col.end(), noise.begin(), noise.end());
  }
  auto chunked = CompressChunkedAuto(AnyColumn(col), {4096});
  ASSERT_OK(chunked.status());
  auto buffer = Serialize(*chunked);
  ASSERT_OK(buffer.status());

  auto sequential = DeserializeChunked(*buffer);
  ASSERT_OK(sequential.status());
  for (const uint64_t threads : {1ull, 2ull, 4ull, 8ull}) {
    ThreadPool pool(threads);
    for (const uint64_t grain : {1ull, 4ull}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " grain=" << grain);
      auto parallel = DeserializeChunked(*buffer, ExecContext{&pool, grain});
      ASSERT_OK(parallel.status());
      ASSERT_EQ(parallel->num_chunks(), sequential->num_chunks());
      ASSERT_EQ(parallel->size(), sequential->size());
      for (uint64_t i = 0; i < sequential->num_chunks(); ++i) {
        EXPECT_EQ(parallel->chunk(i).zone.row_begin,
                  sequential->chunk(i).zone.row_begin);
        EXPECT_EQ(parallel->chunk(i).zone.min, sequential->chunk(i).zone.min);
        EXPECT_EQ(parallel->chunk(i).zone.max, sequential->chunk(i).zone.max);
        EXPECT_EQ(parallel->chunk(i).column.Descriptor(),
                  sequential->chunk(i).column.Descriptor());
        EXPECT_EQ(parallel->chunk(i).column.PayloadBytes(),
                  sequential->chunk(i).column.PayloadBytes());
      }
      auto back = DecompressChunked(*parallel);
      ASSERT_OK(back.status());
      EXPECT_TRUE(*back == AnyColumn(col));
    }
  }
}

TEST(SerializeTest, ParallelDeserializeReportsSameErrorAsSequential) {
  // A corrupt chunk payload must surface the same first-in-chunk-order
  // error whether the parses run sequentially or on a pool.
  std::vector<uint8_t> buffer = SmallChunkedBuffer();
  // Shift one byte of claimed length between the entries (total preserved):
  // chunk 0's parse no longer matches its directory entry.
  size_t off0 = EntryOffset(0, 33);
  uint64_t n0;
  std::memcpy(&n0, buffer.data() + off0, 8);
  PokeU64(buffer, off0, n0 - 1);
  size_t off1 = EntryOffset(1, 33);
  uint64_t n1;
  std::memcpy(&n1, buffer.data() + off1, 8);
  PokeU64(buffer, off1, n1 + 1);

  auto sequential = DeserializeChunked(buffer);
  ASSERT_FALSE(sequential.ok());
  ThreadPool pool(4);
  auto parallel = DeserializeChunked(buffer, ExecContext{&pool, 1});
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), sequential.status().code());
  EXPECT_EQ(parallel.status().ToString(), sequential.status().ToString());
}

TEST(SerializeTest, V2RoundTripsMixedOriginalRecompressedAndStoredPlain) {
  // A live column mid-recompression holds every chunk flavor at once:
  // original pinned seals, chunks a recompression already reswapped,
  // stored-plain backlog chunks whose seal job is wedged, and the
  // stored-plain tail. The v2 wire format must round-trip that mix
  // unchanged — chunk for chunk, descriptor for descriptor — sequentially
  // and with the payload parses fanned out over a pool.
  constexpr uint64_t kChunkRows = 512;
  store::IngestOptions options;
  options.chunk_rows = kChunkRows;
  options.descriptor = Ns();
  const Column<uint32_t> rows = gen::SortedRuns(4 * kChunkRows + 200, 25.0, 3, 43);

  ThreadPool pool(1);
  store::AppendableColumn column(TypeId::kUInt32, options,
                                 ExecContext{&pool, 1});
  // Phase 1: two chunks sealed normally (original pinned NS envelopes).
  ASSERT_OK(column.AppendBatch(AnyColumn(Column<uint32_t>(
      rows.begin(), rows.begin() + 2 * kChunkRows))));
  ASSERT_OK(column.Flush());

  // Phase 2: reswap only slot 0 (budget 1): one recompressed chunk.
  store::RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  policy.max_chunks_per_tick = 1;
  store::Recompressor recompressor(policy, ExecContext{});
  auto tick = recompressor.Tick(column);
  ASSERT_OK(tick.status());
  ASSERT_EQ(tick->chunks_reswapped, 1u);

  // Phase 3: wedge the pool and keep appending — two stored-plain backlog
  // chunks plus a 200-row stored-plain tail. The blocker releases on every
  // exit path (including a failing ASSERT) so the wedged worker never
  // deadlocks the binary's teardown.
  testutil::PoolBlocker blocker(pool, 1);
  ASSERT_OK(column.AppendBatch(AnyColumn(Column<uint32_t>(
      rows.begin() + 2 * kChunkRows, rows.end()))));

  auto snap = column.Snapshot();
  ASSERT_OK(snap.status());
  ASSERT_EQ(snap->chunked().num_chunks(), 5u);
  EXPECT_EQ(snap->sealed_chunks(), 2u);
  EXPECT_EQ(snap->unsealed_chunks(), 3u);
  EXPECT_NE(snap->chunked().chunk(0).column.Descriptor().kind, SchemeKind::kNs);
  EXPECT_EQ(snap->chunked().chunk(1).column.Descriptor().kind, SchemeKind::kNs);
  for (uint64_t i = 2; i < 5; ++i) {
    EXPECT_TRUE(StoredPlainData(snap->chunked().chunk(i).column.root()) !=
                nullptr)
        << i;
  }

  auto buffer = Serialize(snap->chunked());
  ASSERT_OK(buffer.status());
  EXPECT_EQ(buffer->size(), SerializedSize(snap->chunked()));

  auto sequential = DeserializeChunked(*buffer);
  ASSERT_OK(sequential.status());
  ThreadPool readers(3);
  auto parallel = DeserializeChunked(*buffer, ExecContext{&readers, 1});
  ASSERT_OK(parallel.status());
  for (const auto* restored : {&*sequential, &*parallel}) {
    ASSERT_EQ(restored->num_chunks(), snap->chunked().num_chunks());
    for (uint64_t i = 0; i < restored->num_chunks(); ++i) {
      const CompressedChunk& got = restored->chunk(i);
      const CompressedChunk& want = snap->chunked().chunk(i);
      EXPECT_EQ(got.zone.row_begin, want.zone.row_begin) << i;
      EXPECT_EQ(got.zone.row_count, want.zone.row_count) << i;
      EXPECT_EQ(got.zone.has_minmax, want.zone.has_minmax) << i;
      EXPECT_EQ(got.zone.min, want.zone.min) << i;
      EXPECT_EQ(got.zone.max, want.zone.max) << i;
      EXPECT_EQ(got.column.Descriptor(), want.column.Descriptor()) << i;
      EXPECT_EQ(got.column.PayloadBytes(), want.column.PayloadBytes()) << i;
    }
    auto back = DecompressChunked(*restored);
    ASSERT_OK(back.status());
    EXPECT_TRUE(*back == AnyColumn(rows));
  }

  blocker.Release();
  ASSERT_OK(column.Flush());
}

}  // namespace
}  // namespace recomp
