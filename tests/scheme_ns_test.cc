// Tests for the NS (null suppression / bit packing) scheme plus the ID and
// ZIGZAG recodings it composes with.

#include <gtest/gtest.h>

#include "schemes/scheme.h"
#include "test_util.h"
#include "util/bits.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;
using testutil::UniformColumn;

TEST(NsSchemeTest, AutoWidthMatchesMaxValue) {
  Column<uint32_t> col{0, 1, 100, 63};  // max 100 -> 7 bits
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), Ns());
  EXPECT_EQ(c.Descriptor().params.width, 7);
  EXPECT_EQ(c.PayloadBytes(), bits::PackedByteSize(4, 7));
}

TEST(NsSchemeTest, ExplicitWidthRespected) {
  Column<uint32_t> col{1, 2, 3};
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), Ns(16));
  EXPECT_EQ(c.Descriptor().params.width, 16);
}

TEST(NsSchemeTest, ExplicitWidthTooNarrowFails) {
  Column<uint32_t> col{256};
  EXPECT_FALSE(Compress(AnyColumn(col), Ns(8)).ok());
}

TEST(NsSchemeTest, AllZerosCompressToNothing) {
  Column<uint64_t> col(1000, 0);
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), Ns());
  EXPECT_EQ(c.PayloadBytes(), 0u);
  EXPECT_EQ(c.Descriptor().params.width, 0);
}

TEST(NsSchemeTest, SignedInputRejectedWithGuidance) {
  Column<int32_t> col{-1, 2};
  auto result = Compress(AnyColumn(col), Ns());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ZIGZAG"), std::string::npos);
}

TEST(NsSchemeTest, EmptyColumn) {
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}), Ns());
}

TEST(NsSchemeTest, AllUnsignedTypes) {
  ExpectRoundTrip(AnyColumn(UniformColumn<uint8_t>(100, 200, 1)), Ns());
  ExpectRoundTrip(AnyColumn(UniformColumn<uint16_t>(100, 60000, 2)), Ns());
  ExpectRoundTrip(AnyColumn(UniformColumn<uint32_t>(100, 1 << 30, 3)), Ns());
  ExpectRoundTrip(AnyColumn(UniformColumn<uint64_t>(100, ~uint64_t{0}, 4)),
                  Ns());
}

TEST(NsSchemeTest, RatioMatchesWidthFraction) {
  Column<uint32_t> col = UniformColumn<uint32_t>(8192, 256, 5);  // 8 bits
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), Ns());
  EXPECT_NEAR(c.Ratio(), 4.0, 0.01);  // 32 bits -> 8 bits
}

TEST(IdSchemeTest, StoresUnchanged) {
  Column<int64_t> col{-1, 2, -3};
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), Id());
  EXPECT_EQ(c.PayloadBytes(), c.UncompressedBytes());
  EXPECT_DOUBLE_EQ(c.Ratio(), 1.0);
}

TEST(ZigZagSchemeTest, SignedRoundTrip) {
  Column<int32_t> col{0, -1, 1, -100, std::numeric_limits<int32_t>::min(),
                      std::numeric_limits<int32_t>::max()};
  ExpectRoundTrip(AnyColumn(col), ZigZag());
}

TEST(ZigZagSchemeTest, UnsignedRoundTrip) {
  // ZIGZAG on unsigned input reinterprets as signed; still bijective.
  Column<uint32_t> col{0, 1, ~uint32_t{0}, 1u << 31};
  ExpectRoundTrip(AnyColumn(col), ZigZag());
}

TEST(ZigZagSchemeTest, MakesSignedPackable) {
  // Small signed values -> ZIGZAG -> small unsigned -> NS packs narrow.
  Column<int32_t> col{-3, 3, -2, 2, 0};
  CompressedColumn c =
      ExpectRoundTrip(AnyColumn(col), ZigZag().With("recoded", Ns()));
  // zigzag max = 6 -> 3 bits.
  EXPECT_EQ(c.PayloadBytes(), bits::PackedByteSize(5, 3));
}

TEST(ZigZagSchemeTest, AllSignedTypes) {
  ExpectRoundTrip(AnyColumn(Column<int8_t>{-128, 127, 0}), ZigZag());
  ExpectRoundTrip(AnyColumn(Column<int16_t>{-32768, 32767}), ZigZag());
  ExpectRoundTrip(AnyColumn(Column<int64_t>{INT64_MIN, INT64_MAX, 0}),
                  ZigZag());
}

}  // namespace
}  // namespace recomp
