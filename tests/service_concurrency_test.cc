// QueryService under concurrency: clients racing submits against live
// ingest (AppendBatch/Seal/MaintenanceTick), and a fuzz sweep asserting
// batched execution is bit-identical to solo exec::Scan across pool sizes
// and batching windows. The CI thread-sanitizer job runs the full suite, so
// every interleaving exercised here must be TSan-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/scan.h"
#include "service/query_service.h"
#include "service/shared_scan.h"
#include "store/table.h"
#include "test_util.h"
#include "util/macros.h"
#include "util/random.h"

namespace recomp {
namespace {

using exec::AggregateOp;
using exec::ScanOutputsEqual;
using exec::ScanSpec;
using service::QueryService;
using service::ServiceOptions;
using store::Table;

constexpr uint64_t kChunk = 1024;
constexpr uint64_t kValueBound = 1u << 20;

TEST(ServiceConcurrencyTest, SubmitsRaceAppendsSealsAndMaintenance) {
  constexpr uint64_t kRows = 24 * 1024;
  constexpr uint64_t kBatchRows = 1024;
  const Column<uint32_t> all_k =
      testutil::UniformColumn<uint32_t>(kRows, kValueBound, 1101);
  const Column<uint32_t> all_v =
      testutil::UniformColumn<uint32_t>(kRows, kValueBound, 1102);
  // Prefix sums let clients verify SUM over any consistent prefix in O(1).
  std::vector<uint64_t> prefix_sum(kRows + 1, 0);
  for (uint64_t i = 0; i < kRows; ++i) {
    prefix_sum[i + 1] = prefix_sum[i] + all_v[i];
  }

  ThreadPool pool(4);
  auto table = Table::Create({{"k", TypeId::kUInt32, {kChunk}, ""},
                              {"v", TypeId::kUInt32, {kChunk}, ""}},
                             ExecContext{&pool, 1});
  ASSERT_OK(table.status());
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(100);
  auto service =
      QueryService::Create(&*table, options, ExecContext{&pool, 1});
  ASSERT_OK(service.status());
  QueryService& svc = **service;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries_checked{0};

  // Clients: every answer must reflect a consistent prefix of the appended
  // rows — rows_scanned is the prefix length, the v-sum must match its
  // prefix sum exactly. The all-pass filter keeps the selection path (and
  // the selection cache, invalidating on every append) in the race; the two
  // spec shapes repeat constantly, so the result cache serves hits between
  // version bumps and its invalidation races AppendBatch the whole run — a
  // stale cached result would break the prefix-sum invariant immediately.
  auto client_loop = [&](uint64_t seed) {
    Rng rng(seed);
    const uint64_t client = svc.RegisterClient();
    while (!done.load(std::memory_order_acquire)) {
      ScanSpec spec;
      if (rng.Below(2) == 0) {
        spec.Filter("k", {0, kValueBound}).Aggregate("v", AggregateOp::kSum);
      } else {
        spec.Aggregate("v", AggregateOp::kSum)
            .Aggregate("v", AggregateOp::kCount);
      }
      auto future = svc.Submit(client, spec);
      if (!future.ok()) {
        // Admission may refuse under overload; only those codes are legal.
        ASSERT_EQ(future.status().code(), StatusCode::kResourceExhausted);
        std::this_thread::yield();
        continue;
      }
      Result<exec::ScanResult> result = future->get();
      ASSERT_OK(result.status());
      const uint64_t n = result->rows_scanned;
      ASSERT_LE(n, kRows);
      ASSERT_EQ(n % kBatchRows, 0u) << "snapshot cut mid-append";
      if (spec.filters().empty()) {
        ASSERT_EQ(result->aggregates[0].value(), prefix_sum[n]);
        ASSERT_EQ(result->aggregates[1].value(), n);
      } else {
        ASSERT_EQ(result->rows_matched, n) << "all-pass filter dropped rows";
        ASSERT_EQ(result->aggregates[0].value(), prefix_sum[n]);
      }
      queries_checked.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < 2; ++t) {
    clients.emplace_back(client_loop, 1200 + t);
  }

  // Writer: appends batch by batch, racing seals and maintenance ticks into
  // the mix (representation-only work that must never disturb answers).
  for (uint64_t begin = 0; begin < kRows; begin += kBatchRows) {
    Column<uint32_t> batch_k(all_k.begin() + begin,
                             all_k.begin() + begin + kBatchRows);
    Column<uint32_t> batch_v(all_v.begin() + begin,
                             all_v.begin() + begin + kBatchRows);
    ASSERT_OK(table->AppendBatch({AnyColumn(batch_k), AnyColumn(batch_v)}));
    if ((begin / kBatchRows) % 5 == 2) ASSERT_OK(table->Seal());
    if ((begin / kBatchRows) % 7 == 3) {
      EXPECT_OK(table->MaintenanceTick().status());
    }
    std::this_thread::yield();
  }
  ASSERT_OK(table->Flush());

  // Let the clients observe the final state at least once before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  svc.Stop();

  EXPECT_GT(queries_checked.load(), 0u);

  // The fully-appended table answers with every row.
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  ScanSpec final_spec;
  final_spec.Aggregate("v", AggregateOp::kSum);
  auto final_result = exec::Scan(*snap, final_spec);
  ASSERT_OK(final_result.status());
  EXPECT_EQ(final_result->aggregates[0].value(), prefix_sum[kRows]);
}

/// A pseudo-random spec mixing filters, projections, aggregates, limits.
ScanSpec FuzzSpec(Rng& rng) {
  const uint64_t lo = rng.Below(kValueBound);
  const uint64_t hi = lo + rng.Below(kValueBound / 3);
  ScanSpec spec;
  switch (rng.Below(6)) {
    case 0:
      spec.Filter("k", {lo, hi});
      break;
    case 1:
      spec.Filter("k", {lo, hi}).Project({"v"});
      break;
    case 2:
      spec.Filter("k", {lo, hi}).Aggregate("v", AggregateOp::kSum);
      break;
    case 3:
      spec.Filter("k", {lo, hi})
          .Filter("v", {0, kValueBound / 2})
          .Aggregate("k", AggregateOp::kMin);
      break;
    case 4:
      spec.Aggregate("v", AggregateOp::kMax)
          .Aggregate("k", AggregateOp::kCount);
      break;
    default:
      spec.Filter("k", {lo, hi}).Project({"v", "k"}).Limit(1 + rng.Below(300));
      break;
  }
  return spec;
}

TEST(ServiceConcurrencyTest, FuzzBatchedMatchesSoloAcrossPoolsAndWindows) {
  constexpr uint64_t kRows = 8 * kChunk;
  ThreadPool build_pool(2);
  auto table = Table::Create({{"k", TypeId::kUInt32, {kChunk}, ""},
                              {"v", TypeId::kUInt32, {kChunk}, ""}},
                             ExecContext{&build_pool, 1});
  ASSERT_OK(table.status());
  ASSERT_OK(table->AppendBatch(
      {AnyColumn(testutil::UniformColumn<uint32_t>(kRows, kValueBound, 1301)),
       AnyColumn(
           testutil::UniformColumn<uint32_t>(kRows, kValueBound, 1302))}));
  ASSERT_OK(table->Seal());
  ASSERT_OK(table->Flush());
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  uint64_t seed = 1303;
  for (const uint64_t threads : {uint64_t{0}, uint64_t{2}, uint64_t{4}}) {
    std::unique_ptr<ThreadPool> pool;
    ExecContext ctx;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx = ExecContext{pool.get(), 1};
    }
    for (const uint64_t window_us : {uint64_t{0}, uint64_t{200}, uint64_t{2000}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " window_us=" + std::to_string(window_us));
      ServiceOptions options;
      options.batch_window = std::chrono::microseconds(window_us);
      auto service = QueryService::Create(&*table, options, ctx);
      ASSERT_OK(service.status());
      QueryService& svc = **service;

      Rng rng(seed++);
      const uint64_t client_a = svc.RegisterClient();
      const uint64_t client_b = svc.RegisterClient();
      std::vector<ScanSpec> specs;
      std::vector<QueryService::ResultFuture> futures;
      for (int q = 0; q < 32; ++q) {
        specs.push_back(FuzzSpec(rng));
        auto future = svc.Submit(q % 2 == 0 ? client_a : client_b,
                                 specs.back());
        ASSERT_OK(future.status());
        futures.push_back(std::move(*future));
      }
      for (size_t q = 0; q < futures.size(); ++q) {
        Result<exec::ScanResult> batched = futures[q].get();
        ASSERT_OK(batched.status()) << "query " << q;
        auto solo = exec::Scan(*snap, specs[q]);
        ASSERT_OK(solo.status()) << "query " << q;
        EXPECT_TRUE(ScanOutputsEqual(*batched, *solo)) << "query " << q;
      }
      svc.Stop();
    }
  }
}

TEST(ServiceConcurrencyTest, FuzzDuplicatesAndNestedBandsMatchSolo) {
  constexpr uint64_t kRows = 8 * kChunk;
  ThreadPool build_pool(2);
  auto table = Table::Create({{"k", TypeId::kUInt32, {kChunk}, ""},
                              {"v", TypeId::kUInt32, {kChunk}, ""}},
                             ExecContext{&build_pool, 1});
  ASSERT_OK(table.status());
  ASSERT_OK(table->AppendBatch(
      {AnyColumn(testutil::UniformColumn<uint32_t>(kRows, kValueBound, 1401)),
       AnyColumn(
           testutil::UniformColumn<uint32_t>(kRows, kValueBound, 1402))}));
  ASSERT_OK(table->Seal());
  ASSERT_OK(table->Flush());
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());

  uint64_t seed = 1403;
  for (const uint64_t threads : {uint64_t{0}, uint64_t{2}, uint64_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::unique_ptr<ThreadPool> pool;
    ExecContext ctx;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      ctx = ExecContext{pool.get(), 1};
    }
    ServiceOptions options;
    options.batch_window = std::chrono::microseconds(2000);
    auto service = QueryService::Create(&*table, options, ctx);
    ASSERT_OK(service.status());
    QueryService& svc = **service;

    // A workload that deliberately repeats itself and nests its bands:
    // duplicates exercise the result cache / in-batch dedup, shrunken
    // copies of earlier bands exercise the subsumption lattice.
    Rng rng(seed++);
    std::vector<ScanSpec> specs;
    for (int q = 0; q < 32; ++q) {
      const uint64_t roll = rng.Below(4);
      if (roll == 0 && !specs.empty()) {
        specs.push_back(specs[rng.Below(specs.size())]);  // Duplicate.
      } else if (roll == 1 && !specs.empty()) {
        // Nest strictly inside an earlier filtered band when one exists.
        const ScanSpec& base = specs[rng.Below(specs.size())];
        if (!base.filters().empty()) {
          const exec::RangePredicate outer = base.filters()[0].predicate;
          const uint64_t width = outer.hi - outer.lo;
          exec::RangePredicate inner{outer.lo + 1 + rng.Below(width / 2 + 1),
                                     outer.hi - rng.Below(width / 4 + 1)};
          if (inner.lo > inner.hi) inner.lo = inner.hi;
          ScanSpec nested;
          nested.Filter(base.filters()[0].column, inner).Project({"v"});
          specs.push_back(nested);
        } else {
          specs.push_back(FuzzSpec(rng));
        }
      } else {
        specs.push_back(FuzzSpec(rng));
      }
    }

    const uint64_t client_a = svc.RegisterClient();
    const uint64_t client_b = svc.RegisterClient();
    const auto run_pass = [&](const char* pass) {
      SCOPED_TRACE(pass);
      std::vector<QueryService::ResultFuture> futures;
      for (size_t q = 0; q < specs.size(); ++q) {
        auto future =
            svc.Submit(q % 2 == 0 ? client_a : client_b, specs[q]);
        ASSERT_OK(future.status());
        futures.push_back(std::move(*future));
      }
      for (size_t q = 0; q < futures.size(); ++q) {
        Result<exec::ScanResult> batched = futures[q].get();
        ASSERT_OK(batched.status()) << "query " << q;
        auto solo = exec::Scan(*snap, specs[q]);
        ASSERT_OK(solo.status()) << "query " << q;
        EXPECT_TRUE(ScanOutputsEqual(*batched, *solo)) << "query " << q;
      }
    };
    run_pass("cold");
    svc.Flush();
    // The warm pass replays the identical workload at the same version:
    // every spec was cached by the cold pass, so nothing executes anew.
    const uint64_t executed_cold = svc.stats().queries_executed;
    run_pass("warm");
    const service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.queries_executed, executed_cold);
    EXPECT_GE(stats.result_cache_hits, specs.size());
    svc.Stop();
  }
}

TEST(ServiceConcurrencyTest, DecodedCacheEvictionRacesDecodesSafely) {
  constexpr uint64_t kRows = 16 * kChunk;
  ThreadPool build_pool(2);
  auto table = Table::Create({{"k", TypeId::kUInt32, {kChunk}, ""}},
                             ExecContext{&build_pool, 1});
  ASSERT_OK(table.status());
  ASSERT_OK(table->AppendBatch(
      {AnyColumn(testutil::UniformColumn<uint32_t>(kRows, kValueBound, 1501))}));
  ASSERT_OK(table->Seal());
  ASSERT_OK(table->Flush());
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  const auto& chunked = snap->column(0).chunked();
  const uint64_t num_chunks = chunked.num_chunks();
  ASSERT_GE(num_chunks, 16u);

  // A 1-byte budget keeps every settled cell permanently over budget, so
  // the evictor thread is always trying to rip cells out while decoders
  // and straggler waiters latch onto them.
  service::DecodedChunkCache cache(/*max_bytes=*/1);
  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cache.EvictToBudget();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> decoders;
  for (int t = 0; t < 4; ++t) {
    decoders.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        for (uint64_t c = 0; c < num_chunks; ++c) {
          // Stagger start points so threads collide on different cells.
          const uint64_t chunk = (c + t * 4) % num_chunks;
          auto values = cache.GetOrDecode(/*version=*/1, /*column=*/0, chunk,
                                          chunked.chunk(chunk).column);
          ASSERT_OK(values.status());
          ASSERT_NE(*values, nullptr);
          // A cell evicted out from under its decoder (or a waiter) would
          // surface as a wrong-sized or dead buffer here.
          ASSERT_EQ((*values)->size(), chunked.chunk(chunk).zone.row_count);
        }
      }
    });
  }
  for (std::thread& t : decoders) t.join();
  stop.store(true, std::memory_order_release);
  evictor.join();

  // With every decode settled, one final pass must drain the cache to
  // nothing — and the byte ledger must land on exactly zero. Pre-fix, a
  // cell evicted mid-decode leaked its bytes forever: the map emptied but
  // bytes() stayed stuck above the budget with nothing left to evict.
  cache.EvictToBudget();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

}  // namespace
}  // namespace recomp
