// Tests for envelope rewrites: peeling (partial decompression) and pushing
// (re-composition). Pins the paper's §II-A identity at the data level:
// RLE-compressed data peeled at "positions" IS RPE-compressed data.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/rewrite.h"
#include "test_util.h"

namespace recomp {
namespace {

using testutil::RunsColumn;

TEST(RewriteTest, PeelingRleYieldsRpeBytes) {
  Column<uint32_t> col = RunsColumn(20000, 0.05, 11);
  auto rle = Compress(AnyColumn(col), MakeRle());
  auto rpe = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(rle.status());
  ASSERT_OK(rpe.status());

  auto peeled = PeelPart(*rle, "positions");
  ASSERT_OK(peeled.status());

  // Same descriptor, same part columns, byte for byte.
  EXPECT_EQ(peeled->Descriptor(), rpe->Descriptor());
  EXPECT_TRUE(*peeled->root().parts.at("positions").column ==
              *rpe->root().parts.at("positions").column);
  EXPECT_TRUE(*peeled->root().parts.at("values").column ==
              *rpe->root().parts.at("values").column);

  // And it still decompresses to the original column.
  auto back = Decompress(*peeled);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(RewriteTest, PeelTradesBytesForOperators) {
  // The §II-A trade, measured: peeling never shrinks the payload and never
  // adds decompression work.
  Column<uint32_t> col = RunsColumn(20000, 0.05, 12);
  auto rle = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(rle.status());
  auto rpe = PeelPart(*rle, "positions");
  ASSERT_OK(rpe.status());
  EXPECT_GE(rpe->PayloadBytes(), rle->PayloadBytes());
}

TEST(RewriteTest, PushInvertsPeel) {
  Column<uint32_t> col = RunsColumn(5000, 0.1, 13);
  auto rle = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(rle.status());
  auto rpe = PeelPart(*rle, "positions");
  ASSERT_OK(rpe.status());
  auto back = PushPart(*rpe, "positions", Delta());
  ASSERT_OK(back.status());
  EXPECT_EQ(back->Descriptor(), rle->Descriptor());
  EXPECT_TRUE(*back->root().parts.at("positions").sub->parts.at("deltas")
                   .column ==
              *rle->root().parts.at("positions").sub->parts.at("deltas")
                   .column);
}

TEST(RewriteTest, PeelForResidualExposesRawOffsets) {
  // FOR == STEP + NS: peeling the residual's NS leaves the step model with
  // plain offsets.
  Column<uint32_t> col;
  for (uint32_t i = 0; i < 8192; ++i) col.push_back(1000 + (i / 64) + i % 7);
  auto for_compressed = Compress(AnyColumn(col), MakeFor(64));
  ASSERT_OK(for_compressed.status());
  auto peeled = PeelPart(*for_compressed, "residual");
  ASSERT_OK(peeled.status());
  const CompressedPart& residual = peeled->root().parts.at("residual");
  ASSERT_TRUE(residual.is_terminal());
  EXPECT_FALSE(residual.column->is_packed());
  auto back = Decompress(*peeled);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(RewriteTest, PeelAllFlattensDeepComposites) {
  Column<uint32_t> col = RunsColumn(5000, 0.05, 14);
  auto deep = Compress(AnyColumn(col), MakeRleDelta());
  ASSERT_OK(deep.status());
  auto flat = PeelAll(*deep);
  ASSERT_OK(flat.status());
  for (const auto& [name, part] : flat->root().parts) {
    EXPECT_TRUE(part.is_terminal()) << name;
  }
  auto back = Decompress(*flat);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
  EXPECT_GE(flat->PayloadBytes(), deep->PayloadBytes());
}

TEST(RewriteTest, PeelNestedPath) {
  Column<uint32_t> col = RunsColumn(5000, 0.05, 15);
  auto deep = Compress(AnyColumn(col), MakeRleDelta());
  ASSERT_OK(deep.status());
  // positions: DELTA{deltas: NS} — peel just the inner NS.
  auto peeled = PeelPart(*deep, "positions/deltas");
  ASSERT_OK(peeled.status());
  const CompressedNode& positions = *peeled->root().parts.at("positions").sub;
  EXPECT_TRUE(positions.parts.at("deltas").is_terminal());
  auto back = Decompress(*peeled);
  ASSERT_OK(back.status());
  EXPECT_EQ(back->As<uint32_t>(), col);
}

TEST(RewriteTest, ErrorsAreClean) {
  Column<uint32_t> col = RunsColumn(100, 0.3, 16);
  auto rle = Compress(AnyColumn(col), MakeRle());
  ASSERT_OK(rle.status());
  // Peel a terminal part.
  EXPECT_FALSE(PeelPart(*rle, "values").ok());
  // Peel a missing part.
  EXPECT_FALSE(PeelPart(*rle, "nope").ok());
  // Push onto a composed part.
  EXPECT_FALSE(PushPart(*rle, "positions", Ns()).ok());
  // Push an invalid child.
  auto rpe = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(rpe.status());
  SchemeDescriptor bad(SchemeKind::kModeled);
  EXPECT_FALSE(PushPart(*rpe, "positions", bad).ok());
}

TEST(RewriteTest, PushEnablesRecompositionExploration) {
  // Starting from plain RPE, explore re-compositions of the positions part
  // and verify they all decompress identically.
  Column<uint32_t> col = RunsColumn(10000, 0.03, 17);
  auto rpe = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(rpe.status());
  for (const char* child : {"DELTA", "DELTA{deltas:NS}", "NS", "VBYTE"}) {
    auto desc = SchemeDescriptor::Parse(child);
    ASSERT_OK(desc.status());
    auto pushed = PushPart(*rpe, "positions", *desc);
    ASSERT_OK(pushed.status()) << child;
    auto back = Decompress(*pushed);
    ASSERT_OK(back.status()) << child;
    EXPECT_EQ(back->As<uint32_t>(), col) << child;
  }
}

}  // namespace
}  // namespace recomp
