// Tests for the SchemeDescriptor algebra: construction, rendering, parsing,
// validation.

#include <gtest/gtest.h>

#include "core/descriptor.h"

namespace recomp {
namespace {

TEST(DescriptorTest, KindNamesRoundTrip) {
  for (int i = 0; i < kNumSchemeKinds; ++i) {
    SchemeKind k = static_cast<SchemeKind>(i);
    SchemeKind parsed;
    ASSERT_TRUE(SchemeKindFromName(SchemeKindName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  SchemeKind out;
  EXPECT_FALSE(SchemeKindFromName("RLE", &out));  // RLE is catalog, not kind.
}

TEST(DescriptorTest, LeafToString) {
  EXPECT_EQ(Id().ToString(), "ID");
  EXPECT_EQ(Ns().ToString(), "NS");
  EXPECT_EQ(Ns(7).ToString(), "NS(7)");
  EXPECT_EQ(Step(128).ToString(), "STEP(128)");
  EXPECT_EQ(Patched(12).ToString(), "PATCHED(12)");
}

TEST(DescriptorTest, CompositeToString) {
  SchemeDescriptor rle = Rpe().With("positions", Delta());
  EXPECT_EQ(rle.ToString(), "RPE{positions:DELTA}");

  SchemeDescriptor for_scheme =
      Modeled(Step(128)).With("residual", Ns(7));
  EXPECT_EQ(for_scheme.ToString(), "MODELED(STEP(128)){residual:NS(7)}");
}

TEST(DescriptorTest, NestedChildrenToString) {
  SchemeDescriptor d = Rpe()
                           .With("positions", Delta().With("deltas", Ns()))
                           .With("values", Dict().With("codes", Ns()));
  EXPECT_EQ(d.ToString(),
            "RPE{positions:DELTA{deltas:NS},values:DICT{codes:NS}}");
}

TEST(DescriptorTest, ParseInvertsToString) {
  const std::vector<std::string> cases = {
      "ID",
      "NS(13)",
      "VBYTE",
      "ZIGZAG",
      "DELTA{deltas:ZIGZAG{recoded:NS}}",
      "RPE{positions:DELTA,values:DICT}",
      "MODELED(STEP(1024)){residual:NS(9)}",
      "MODELED(PLIN(256)){residual:PATCHED(8){base:NS}}",
      "DICT{codes:NS(5)}",
  };
  for (const auto& text : cases) {
    auto parsed = SchemeDescriptor::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(DescriptorTest, ParseToleratesWhitespace) {
  auto parsed = SchemeDescriptor::Parse(" RPE { positions : DELTA } ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToString(), "RPE{positions:DELTA}");
}

TEST(DescriptorTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SchemeDescriptor::Parse("").ok());
  EXPECT_FALSE(SchemeDescriptor::Parse("NOPE").ok());
  EXPECT_FALSE(SchemeDescriptor::Parse("NS(").ok());
  EXPECT_FALSE(SchemeDescriptor::Parse("NS(x)").ok());
  EXPECT_FALSE(SchemeDescriptor::Parse("RPE{positions}").ok());
  EXPECT_FALSE(SchemeDescriptor::Parse("RPE{positions:DELTA").ok());
  EXPECT_FALSE(SchemeDescriptor::Parse("NS(7) trailing").ok());
}

TEST(DescriptorTest, ValidateArity) {
  // MODELED without a model arg.
  SchemeDescriptor bad(SchemeKind::kModeled);
  EXPECT_FALSE(bad.Validate().ok());

  // MODELED with a non-model argument.
  SchemeDescriptor bad2(SchemeKind::kModeled);
  bad2.args.push_back(Ns());
  EXPECT_FALSE(bad2.Validate().ok());

  // Non-combinator with args.
  SchemeDescriptor bad3(SchemeKind::kNs);
  bad3.args.push_back(Id());
  EXPECT_FALSE(bad3.Validate().ok());

  EXPECT_TRUE(Modeled(Step(64)).Validate().ok());
}

TEST(DescriptorTest, ValidateParams) {
  EXPECT_FALSE(Ns(65).Validate().ok());
  EXPECT_FALSE(Ns(-1).Validate().ok());
  EXPECT_TRUE(Ns(64).Validate().ok());
  // Width on a scheme that takes none.
  SchemeDescriptor bad(SchemeKind::kDelta);
  bad.params.width = 3;
  EXPECT_FALSE(bad.Validate().ok());
  // Segment length on a scheme that takes none.
  SchemeDescriptor bad2(SchemeKind::kRpe);
  bad2.params.segment_length = 8;
  EXPECT_FALSE(bad2.Validate().ok());
  EXPECT_FALSE(Plin(1).Validate().ok());
  EXPECT_TRUE(Plin(2).Validate().ok());
}

TEST(DescriptorTest, ValidateIdHasNoChildren) {
  SchemeDescriptor bad = Id().With("data", Ns());
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(DescriptorTest, EqualityIsStructural) {
  EXPECT_EQ(Rpe().With("positions", Delta()), Rpe().With("positions", Delta()));
  EXPECT_FALSE(Rpe().With("positions", Delta()) == Rpe());
  EXPECT_FALSE(Ns(7) == Ns(8));
  EXPECT_FALSE(Modeled(Step(64)) == Modeled(Step(128)));
}

TEST(DescriptorTest, NodeCount) {
  EXPECT_EQ(Id().NodeCount(), 1u);
  EXPECT_EQ(Rpe().With("positions", Delta()).NodeCount(), 2u);
  EXPECT_EQ(Modeled(Step(64)).With("residual", Ns()).NodeCount(), 3u);
}

TEST(DescriptorTest, WithOnLvalueDoesNotMutate) {
  const SchemeDescriptor base = Rpe();
  SchemeDescriptor extended = base.With("positions", Delta());
  EXPECT_TRUE(base.children.empty());
  EXPECT_EQ(extended.children.size(), 1u);
}

}  // namespace
}  // namespace recomp
