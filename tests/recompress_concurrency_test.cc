// Recompression racing everything else: swap-vs-scan correctness is the
// headline risk of the subsystem, so these tests put snapshot scans,
// GetAtBatch point access, AppendBatch/Seal ingest, and
// MaintenanceTick/background maintenance on the same table at once — the
// CI ThreadSanitizer job runs the whole file (Recompress* filter) — plus a
// randomized fuzz oracle: after arbitrary append/seal/recompress
// interleavings, every snapshot must agree bit-identically with
// CompressChunkedAuto over the same rows, across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "core/chunked.h"
#include "exec/aggregate.h"
#include "exec/point_access.h"
#include "exec/scan.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "store/appendable_column.h"
#include "store/recompress.h"
#include "store/table.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

using exec::RangePredicate;
using store::AppendableColumn;
using store::RecompressionPolicy;
using store::Recompressor;
using store::Table;

TEST(RecompressionConcurrencyTest, ScansRaceIngestAndMaintenanceTicks) {
  // Deterministic columns — k[i] = i, v[i] = i / 8 (run-heavy) — let every
  // reader verify whole scan results with closed-form expectations over
  // whatever prefix its snapshot caught, no matter how many chunks the
  // maintenance thread has reswapped. "v" pins NS so recompression always
  // has genuine work racing the scans.
  constexpr uint64_t kRows = 20 * 1024;
  constexpr uint64_t kChunkRows = 1024;
  constexpr uint64_t kKeyCap = 4000;  // Filter: k < kKeyCap.

  ThreadPool pool(4);
  store::IngestOptions pinned;
  pinned.chunk_rows = kChunkRows + 300;  // Misaligned with "k" on purpose.
  pinned.descriptor = Ns();
  auto table = Table::Create(
      {
          {"k", TypeId::kUInt32, {kChunkRows}, ""},
          {"v", TypeId::kUInt32, pinned, ""},
      },
      ExecContext{&pool, 1});
  ASSERT_OK(table.status());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scans_run{0};

  auto reader = [&]() {
    exec::ScanSpec spec;
    spec.Filter("k", RangePredicate{0, kKeyCap - 1})
        .Project({"v"})
        .Aggregate("v", exec::AggregateOp::kSum)
        .Aggregate("k", exec::AggregateOp::kCount);
    Rng rng(123);
    while (!done.load(std::memory_order_acquire)) {
      auto snap = table->Snapshot();
      ASSERT_OK(snap.status());
      const uint64_t n = snap->rows();
      auto result = exec::Scan(*snap, spec, ExecContext{&pool, 1});
      ASSERT_OK(result.status());
      scans_run.fetch_add(1, std::memory_order_relaxed);

      const uint64_t matches = std::min(n, kKeyCap);
      ASSERT_EQ(result->rows_matched, matches) << "snapshot rows " << n;
      const Column<uint32_t>& v =
          result->projections[0].values.As<uint32_t>();
      ASSERT_EQ(v.size(), matches);
      uint64_t expected_sum = 0;
      for (uint64_t i = 0; i < matches; ++i) {
        ASSERT_EQ(v[i], i / 8);
        expected_sum += i / 8;
      }
      ASSERT_EQ(result->aggregates[0].value(), expected_sum);
      ASSERT_EQ(result->aggregates[1].value(), matches);

      if (n == 0) continue;
      // Batch point probes race the swaps too (chunk-grouped decompress).
      std::vector<uint64_t> probe;
      for (int p = 0; p < 12; ++p) probe.push_back(rng.Below(n));
      auto k_col = snap->column("k");
      ASSERT_OK(k_col.status());
      auto batch = exec::GetAtBatch((*k_col)->chunked(), probe);
      ASSERT_OK(batch.status());
      for (size_t p = 0; p < probe.size(); ++p) {
        ASSERT_EQ((*batch)[p].value, probe[p]);
      }
    }
  };

  auto maintainer = [&]() {
    RecompressionPolicy policy;
    policy.recompress_pinned = true;
    policy.min_gain = 1.0;
    while (!done.load(std::memory_order_acquire)) {
      auto tick = table->MaintenanceTick(policy);
      ASSERT_OK(tick.status());
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) threads.emplace_back(reader);
  threads.emplace_back(maintainer);

  {
    Rng rng(77);
    uint64_t at = 0;
    while (at < kRows) {
      const uint64_t take = std::min<uint64_t>(1 + rng.Below(2000), kRows - at);
      Column<uint32_t> k, v;
      for (uint64_t i = at; i < at + take; ++i) {
        k.push_back(static_cast<uint32_t>(i));
        v.push_back(static_cast<uint32_t>(i / 8));
      }
      ASSERT_OK(table->AppendBatch({AnyColumn(k), AnyColumn(v)}));
      at += take;
      if (rng.Bernoulli(0.2)) ASSERT_OK(table->Seal());
    }
  }
  ASSERT_OK(table->Flush());
  // One more racing pass after the flush so sealed-chunk swaps definitely
  // overlap the readers, then drain completely.
  RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  auto drained = table->RecompressAll(policy);
  ASSERT_OK(drained.status());
  // Keep the table live until slow-starting readers have scanned at least
  // once (the writer can outrun thread startup on a loaded machine).
  for (int spin = 0; spin < 10000 && scans_run.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_GT(scans_run.load(), 0u);

  // After the dust settles: no stored-plain chunk remains in "v", and the
  // final contents are exact.
  auto v_col = table->column("v");
  ASSERT_OK(v_col.status());
  for (const auto& info : (*v_col)->ChunkInfos()) {
    EXPECT_TRUE(info.sealed);
  }
  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto back = DecompressChunked((*snap->column("v"))->chunked());
  ASSERT_OK(back.status());
  const Column<uint32_t>& values = back->As<uint32_t>();
  ASSERT_EQ(values.size(), kRows);
  for (uint64_t i = 0; i < kRows; ++i) ASSERT_EQ(values[i], i / 8);
}

TEST(RecompressionConcurrencyTest, BackgroundMaintenanceRacesIngestAndScans) {
  // The background mode under load: the maintenance thread ticks on its
  // own cadence while appends roll chunks and readers scan snapshots.
  constexpr uint64_t kRows = 16 * 1024;
  ThreadPool pool(4);
  auto table = Table::Create(
      {
          {"a", TypeId::kUInt32, {512}, "NS"},
      },
      ExecContext{&pool, 1});
  ASSERT_OK(table.status());

  RecompressionPolicy policy;
  policy.recompress_pinned = true;
  policy.min_gain = 1.0;
  ASSERT_OK(table->StartMaintenance(policy, std::chrono::milliseconds(1)));

  const Column<uint32_t> rows = gen::SortedRuns(kRows, 25.0, 3, 20260727);
  std::vector<uint64_t> prefix_sum(kRows + 1, 0);
  for (uint64_t i = 0; i < kRows; ++i) prefix_sum[i + 1] = prefix_sum[i] + rows[i];

  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots_taken{0};
  auto reader = [&]() {
    while (!done.load(std::memory_order_acquire)) {
      auto snap = table->Snapshot();
      ASSERT_OK(snap.status());
      const uint64_t n = snap->rows();
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      auto sum = exec::SumCompressed((*snap->column("a"))->chunked(),
                                     ExecContext{&pool, 1});
      ASSERT_OK(sum.status());
      ASSERT_EQ(sum->value, prefix_sum[n]) << "snapshot rows " << n;
    }
  };
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) readers.emplace_back(reader);

  {
    Rng rng(5);
    uint64_t at = 0;
    while (at < kRows) {
      const uint64_t take = std::min<uint64_t>(1 + rng.Below(1500), kRows - at);
      Column<uint32_t> batch(rows.begin() + at, rows.begin() + at + take);
      ASSERT_OK(table->AppendBatch({AnyColumn(batch)}));
      at += take;
      if (rng.Bernoulli(0.25)) ASSERT_OK(table->Seal());
    }
  }
  ASSERT_OK(table->Flush());
  // Keep the table live until slow-starting readers have scanned at least
  // once (the writer can outrun thread startup on a loaded machine).
  for (int spin = 0; spin < 10000 && snapshots_taken.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  // A fast writer can outrun the first 1ms maintenance sleep; give the
  // thread a chance to tick over the flushed chunks before stopping so the
  // examined counter is meaningful.
  for (int spin = 0; spin < 10000; ++spin) {
    if (table->maintenance_report().chunks_examined > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  table->StopMaintenance();
  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_GT(table->maintenance_report().chunks_examined, 0u);

  auto snap = table->Snapshot();
  ASSERT_OK(snap.status());
  auto back = DecompressChunked((*snap->column("a"))->chunked());
  ASSERT_OK(back.status());
  EXPECT_TRUE(*back == AnyColumn(rows));
}

TEST(RecompressionConcurrencyTest, FuzzRecompressionOracleAgreement) {
  // Random data shape, chunk size, pool size, policy knobs, and
  // interleaving of AppendBatch / Seal / Tick: at every probe point the
  // live snapshot must answer exactly like CompressChunkedAuto over the
  // same prefix — for select, sum, min, max, and batch point access, under
  // the same ExecContext — and the flushed, fully recompressed column must
  // reproduce the rows bit for bit.
  Rng rng(86420);
  for (int round = 0; round < 8; ++round) {
    const uint64_t n = 500 + rng.Below(6000);
    Column<uint32_t> rows;
    switch (rng.Below(3)) {
      case 0:
        rows = gen::SortedRuns(n, 1.0 + rng.NextDouble() * 30, 3, rng.Next());
        break;
      case 1:
        rows = gen::Uniform(n, uint64_t{1} << (1 + rng.Below(30)), rng.Next());
        break;
      default:
        rows = gen::StepLevels(n, 64 << rng.Below(4), 20, rng.Below(10),
                               rng.Next());
        break;
    }
    const uint64_t chunk_rows = 16 + rng.Below(1500);
    ThreadPool pool(rng.Below(4));  // 0 = inline seals and scans.
    const ExecContext ctx{&pool, 1};
    AppendableColumn column(TypeId::kUInt32, {chunk_rows}, ctx);

    RecompressionPolicy policy;
    policy.min_gain = 1.0 + rng.NextDouble() * (rng.Bernoulli(0.3) ? 10 : 0.1);
    policy.min_age_chunks = rng.Below(3);
    policy.max_chunks_per_tick = 1 + rng.Below(8);
    Recompressor recompressor(policy, ctx);

    uint64_t at = 0;
    while (at < rows.size()) {
      const uint64_t take =
          std::min<uint64_t>(1 + rng.Below(900), rows.size() - at);
      Column<uint32_t> batch(rows.begin() + at, rows.begin() + at + take);
      ASSERT_OK(column.AppendBatch(AnyColumn(batch)));
      at += take;
      if (rng.Bernoulli(0.2)) ASSERT_OK(column.Seal());
      if (rng.Bernoulli(0.4)) ASSERT_OK(recompressor.Tick(column).status());
      if (rng.Bernoulli(0.3)) {
        const Column<uint32_t> prefix(rows.begin(), rows.begin() + at);
        auto snap = column.Snapshot();
        ASSERT_OK(snap.status());
        ASSERT_EQ(snap->size(), at);
        auto oracle = CompressChunkedAuto(AnyColumn(prefix), {chunk_rows});
        ASSERT_OK(oracle.status());

        const uint64_t a = rng.Below(uint64_t{1} << 32);
        const uint64_t b = rng.Below(uint64_t{1} << 32);
        const RangePredicate pred{std::min(a, b), std::max(a, b)};
        auto live_sel = exec::SelectCompressed(snap->chunked(), pred, ctx);
        auto ref_sel = exec::SelectCompressed(*oracle, pred, ctx);
        ASSERT_OK(live_sel.status());
        ASSERT_OK(ref_sel.status());
        ASSERT_EQ(live_sel->positions, ref_sel->positions);

        auto live_sum = exec::SumCompressed(snap->chunked(), ctx);
        auto ref_sum = exec::SumCompressed(*oracle, ctx);
        ASSERT_OK(live_sum.status());
        ASSERT_OK(ref_sum.status());
        ASSERT_EQ(live_sum->value, ref_sum->value);

        auto live_min = exec::MinCompressed(snap->chunked(), ctx);
        auto ref_min = exec::MinCompressed(*oracle, ctx);
        ASSERT_OK(live_min.status());
        ASSERT_OK(ref_min.status());
        ASSERT_EQ(live_min->value, ref_min->value);

        auto live_max = exec::MaxCompressed(snap->chunked(), ctx);
        auto ref_max = exec::MaxCompressed(*oracle, ctx);
        ASSERT_OK(live_max.status());
        ASSERT_OK(ref_max.status());
        ASSERT_EQ(live_max->value, ref_max->value);

        std::vector<uint64_t> probe;
        for (int p = 0; p < 16; ++p) probe.push_back(rng.Below(at));
        auto live_batch = exec::GetAtBatch(snap->chunked(), probe, ctx);
        auto ref_batch = exec::GetAtBatch(*oracle, probe, ctx);
        ASSERT_OK(live_batch.status());
        ASSERT_OK(ref_batch.status());
        for (size_t p = 0; p < probe.size(); ++p) {
          ASSERT_EQ((*live_batch)[p].value, (*ref_batch)[p].value);
        }
      }
    }

    ASSERT_OK(column.Flush());
    auto drained = recompressor.RecompressAll(column);
    ASSERT_OK(drained.status());
    auto snap = column.Snapshot();
    ASSERT_OK(snap.status());
    EXPECT_EQ(snap->unsealed_chunks(), 0u) << "round " << round;
    auto back = DecompressChunked(snap->chunked(), ctx);
    ASSERT_OK(back.status());
    ASSERT_TRUE(*back == AnyColumn(rows)) << "round " << round;
  }
}

}  // namespace
}  // namespace recomp
