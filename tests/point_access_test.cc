// Tests for point access on compressed columns: every strategy must agree
// with full decompression at every probed row.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "core/catalog.h"
#include "core/chunked.h"
#include "exec/point_access.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

void ExpectPointAccess(const Column<uint32_t>& col,
                       const SchemeDescriptor& desc,
                       exec::Strategy expected_strategy) {
  auto compressed = Compress(AnyColumn(col), desc);
  ASSERT_OK(compressed.status());
  Rng rng(99);
  std::vector<uint64_t> rows = {0, col.size() - 1, col.size() / 2};
  for (int i = 0; i < 20; ++i) rows.push_back(rng.Below(col.size()));
  for (uint64_t row : rows) {
    auto result = exec::GetAt(*compressed, row);
    ASSERT_OK(result.status()) << desc.ToString() << " row " << row;
    EXPECT_EQ(result->value, col[row]) << desc.ToString() << " row " << row;
    EXPECT_EQ(result->strategy, expected_strategy) << desc.ToString();
  }
}

TEST(PointAccessTest, NsDirect) {
  ExpectPointAccess(gen::Uniform(10000, 1 << 17, 1), Ns(), exec::Strategy::kNsDirect);
}

TEST(PointAccessTest, ForDirect) {
  ExpectPointAccess(gen::StepLevels(20000, 512, 24, 6, 2), MakeFor(512),
                    exec::Strategy::kForDirect);
}

TEST(PointAccessTest, RpeBinarySearch) {
  ExpectPointAccess(gen::SortedRuns(20000, 30.0, 3, 3), Rpe(),
                    exec::Strategy::kRpeBinarySearch);
}

TEST(PointAccessTest, DictProbePlainCodes) {
  ExpectPointAccess(gen::ZipfValues(10000, 64, 1.1, 4), Dict(), exec::Strategy::kDictProbe);
}

TEST(PointAccessTest, DictProbePackedCodes) {
  ExpectPointAccess(gen::ZipfValues(10000, 64, 1.1, 5), MakeDictNs(),
                    exec::Strategy::kDictProbe);
}

TEST(PointAccessTest, FallbackForSequentialSchemes) {
  ExpectPointAccess(gen::SortedRuns(5000, 10.0, 2, 6), MakeDeltaNs(),
                    exec::Strategy::kDecompressScan);
}

TEST(PointAccessTest, RleFallsBackWhenPositionsComposed) {
  // RLE's positions are DELTA-compressed: no random access to run ends
  // without integrating them, so GetAt degrades gracefully.
  ExpectPointAccess(gen::SortedRuns(5000, 10.0, 2, 7), MakeRle(),
                    exec::Strategy::kDecompressScan);
}

TEST(PointAccessTest, OutOfRangeRejected) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{1, 2}), Ns());
  ASSERT_OK(compressed.status());
  EXPECT_EQ(exec::GetAt(*compressed, 2).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PointAccessTest, SignedRejected) {
  auto compressed = Compress(AnyColumn(Column<int32_t>{1}), Rpe());
  ASSERT_OK(compressed.status());
  EXPECT_FALSE(exec::GetAt(*compressed, 0).ok());
}

TEST(PointAccessTest, SingleRunColumn) {
  Column<uint32_t> col(1000, 7);
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  for (uint64_t row : {0u, 500u, 999u}) {
    auto result = exec::GetAt(*compressed, row);
    ASSERT_OK(result.status());
    EXPECT_EQ(result->value, 7u);
  }
}

TEST(PointAccessTest, Uint64ThroughFor) {
  Rng rng(8);
  Column<uint64_t> col;
  for (int i = 0; i < 8192; ++i) {
    col.push_back((uint64_t{1} << 50) + rng.Below(4096));
  }
  auto compressed =
      Compress(AnyColumn(col), MakeFor(256));
  ASSERT_OK(compressed.status());
  for (uint64_t row : {0u, 100u, 8191u}) {
    auto result = exec::GetAt(*compressed, row);
    ASSERT_OK(result.status());
    EXPECT_EQ(result->value, col[row]);
    EXPECT_EQ(result->strategy, exec::Strategy::kForDirect);
  }
}

// ---------------------------------------------------------------------------
// GetAtBatch: chunk-grouped gather.
// ---------------------------------------------------------------------------

/// Batch lookups with duplicate and unsorted row ids must agree row for row
/// (value and strategy) with per-row GetAt — the regression contract for the
/// chunk-grouped rewrite, which decompresses each touched chunk once rather
/// than once per requested row.
void ExpectBatchAgreesWithPointwise(const ChunkedCompressedColumn& chunked,
                                    const Column<uint32_t>& reference,
                                    const std::vector<uint64_t>& rows,
                                    const ExecContext& ctx) {
  auto batch = exec::GetAtBatch(chunked, rows, ctx);
  ASSERT_OK(batch.status());
  ASSERT_EQ(batch->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    auto point = exec::GetAt(chunked, rows[i]);
    ASSERT_OK(point.status()) << "row " << rows[i];
    EXPECT_EQ((*batch)[i].value, reference[rows[i]]) << "row " << rows[i];
    EXPECT_EQ((*batch)[i].value, point->value) << "row " << rows[i];
    EXPECT_EQ(static_cast<int>((*batch)[i].strategy),
              static_cast<int>(point->strategy))
        << "row " << rows[i];
  }
}

TEST(PointAccessTest, BatchDuplicateAndUnsortedRowsAgreeWithGetAt) {
  constexpr uint64_t kChunk = 512;
  const Column<uint32_t> col = gen::SortedRuns(8 * kChunk, 12.0, 2, 21);

  // A fallback shape (DELTA(NS): no direct access path — every per-row
  // lookup decompresses) and a direct shape (NS) side by side.
  for (const SchemeDescriptor& desc :
       {MakeDeltaNs(), Ns()}) {
    auto chunked = CompressChunked(AnyColumn(col), desc, {kChunk});
    ASSERT_OK(chunked.status());

    Rng rng(22);
    std::vector<uint64_t> rows;
    // Duplicates, reverse order, chunk-boundary rows, interleaved chunks.
    for (int i = 0; i < 64; ++i) rows.push_back(rng.Below(col.size()));
    rows.push_back(rows[0]);
    rows.push_back(rows[0]);
    for (uint64_t c = 0; c <= 8; ++c) {
      if (c * kChunk < col.size()) rows.push_back(c * kChunk);
      if (c * kChunk >= 1) rows.push_back(c * kChunk - 1);
    }
    std::sort(rows.begin(), rows.end(), std::greater<uint64_t>());
    rows.insert(rows.end(), {0, col.size() - 1, 0, col.size() - 1});

    ThreadPool pool(4);
    SCOPED_TRACE(desc.ToString());
    ExpectBatchAgreesWithPointwise(*chunked, col, rows, ExecContext{});
    ExpectBatchAgreesWithPointwise(*chunked, col, rows, ExecContext{&pool, 1});
  }
}

TEST(PointAccessTest, BatchOutOfRangeReportsFirstFailingRowUpFront) {
  const Column<uint32_t> col = gen::SortedRuns(1000, 10.0, 2, 23);
  auto chunked = CompressChunked(AnyColumn(col), MakeDeltaNs(), {256});
  ASSERT_OK(chunked.status());
  const auto result =
      exec::GetAtBatch(*chunked, {5, col.size() + 7, 3}, ExecContext{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  // An empty batch stays OK.
  auto empty = exec::GetAtBatch(*chunked, {}, ExecContext{});
  ASSERT_OK(empty.status());
  EXPECT_TRUE(empty->empty());
}

}  // namespace
}  // namespace recomp
