// Tests for point access on compressed columns: every strategy must agree
// with full decompression at every probed row.

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "exec/point_access.h"
#include "gen/generators.h"
#include "test_util.h"
#include "util/random.h"

namespace recomp {
namespace {

void ExpectPointAccess(const Column<uint32_t>& col,
                       const SchemeDescriptor& desc,
                       exec::Strategy expected_strategy) {
  auto compressed = Compress(AnyColumn(col), desc);
  ASSERT_OK(compressed.status());
  Rng rng(99);
  std::vector<uint64_t> rows = {0, col.size() - 1, col.size() / 2};
  for (int i = 0; i < 20; ++i) rows.push_back(rng.Below(col.size()));
  for (uint64_t row : rows) {
    auto result = exec::GetAt(*compressed, row);
    ASSERT_OK(result.status()) << desc.ToString() << " row " << row;
    EXPECT_EQ(result->value, col[row]) << desc.ToString() << " row " << row;
    EXPECT_EQ(result->strategy, expected_strategy) << desc.ToString();
  }
}

TEST(PointAccessTest, NsDirect) {
  ExpectPointAccess(gen::Uniform(10000, 1 << 17, 1), Ns(), exec::Strategy::kNsDirect);
}

TEST(PointAccessTest, ForDirect) {
  ExpectPointAccess(gen::StepLevels(20000, 512, 24, 6, 2), MakeFor(512),
                    exec::Strategy::kForDirect);
}

TEST(PointAccessTest, RpeBinarySearch) {
  ExpectPointAccess(gen::SortedRuns(20000, 30.0, 3, 3), Rpe(),
                    exec::Strategy::kRpeBinarySearch);
}

TEST(PointAccessTest, DictProbePlainCodes) {
  ExpectPointAccess(gen::ZipfValues(10000, 64, 1.1, 4), Dict(), exec::Strategy::kDictProbe);
}

TEST(PointAccessTest, DictProbePackedCodes) {
  ExpectPointAccess(gen::ZipfValues(10000, 64, 1.1, 5), MakeDictNs(),
                    exec::Strategy::kDictProbe);
}

TEST(PointAccessTest, FallbackForSequentialSchemes) {
  ExpectPointAccess(gen::SortedRuns(5000, 10.0, 2, 6), MakeDeltaNs(),
                    exec::Strategy::kDecompressScan);
}

TEST(PointAccessTest, RleFallsBackWhenPositionsComposed) {
  // RLE's positions are DELTA-compressed: no random access to run ends
  // without integrating them, so GetAt degrades gracefully.
  ExpectPointAccess(gen::SortedRuns(5000, 10.0, 2, 7), MakeRle(),
                    exec::Strategy::kDecompressScan);
}

TEST(PointAccessTest, OutOfRangeRejected) {
  auto compressed = Compress(AnyColumn(Column<uint32_t>{1, 2}), Ns());
  ASSERT_OK(compressed.status());
  EXPECT_EQ(exec::GetAt(*compressed, 2).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PointAccessTest, SignedRejected) {
  auto compressed = Compress(AnyColumn(Column<int32_t>{1}), Rpe());
  ASSERT_OK(compressed.status());
  EXPECT_FALSE(exec::GetAt(*compressed, 0).ok());
}

TEST(PointAccessTest, SingleRunColumn) {
  Column<uint32_t> col(1000, 7);
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  for (uint64_t row : {0u, 500u, 999u}) {
    auto result = exec::GetAt(*compressed, row);
    ASSERT_OK(result.status());
    EXPECT_EQ(result->value, 7u);
  }
}

TEST(PointAccessTest, Uint64ThroughFor) {
  Rng rng(8);
  Column<uint64_t> col;
  for (int i = 0; i < 8192; ++i) {
    col.push_back((uint64_t{1} << 50) + rng.Below(4096));
  }
  auto compressed =
      Compress(AnyColumn(col), MakeFor(256));
  ASSERT_OK(compressed.status());
  for (uint64_t row : {0u, 100u, 8191u}) {
    auto result = exec::GetAt(*compressed, row);
    ASSERT_OK(result.status());
    EXPECT_EQ(result->value, col[row]);
    EXPECT_EQ(result->strategy, exec::Strategy::kForDirect);
  }
}

}  // namespace
}  // namespace recomp
