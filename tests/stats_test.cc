// Unit tests for column statistics.

#include <gtest/gtest.h>

#include "columnar/stats.h"

namespace recomp {
namespace {

TEST(StatsTest, EmptyColumn) {
  ColumnStats s = ComputeStats(Column<uint32_t>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.run_count, 0u);
  EXPECT_FALSE(s.sorted_nondecreasing);
}

TEST(StatsTest, SingleValue) {
  ColumnStats s = ComputeStats(Column<uint32_t>{42});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.min, 42u);
  EXPECT_EQ(s.max, 42u);
  EXPECT_EQ(s.run_count, 1u);
  EXPECT_EQ(s.distinct, 1u);
  EXPECT_TRUE(s.sorted_nondecreasing);
  EXPECT_TRUE(s.strictly_increasing);
  EXPECT_EQ(s.value_bits, 6);
  EXPECT_EQ(s.range_bits, 0);
}

TEST(StatsTest, RunsAndSortedness) {
  ColumnStats s = ComputeStats(Column<uint32_t>{1, 1, 1, 2, 2, 5, 5, 5, 5});
  EXPECT_EQ(s.run_count, 3u);
  EXPECT_EQ(s.max_run_length, 4u);
  EXPECT_DOUBLE_EQ(s.avg_run_length, 3.0);
  EXPECT_TRUE(s.sorted_nondecreasing);
  EXPECT_FALSE(s.strictly_increasing);
  EXPECT_EQ(s.distinct, 3u);
}

TEST(StatsTest, UnsortedDetected) {
  ColumnStats s = ComputeStats(Column<uint32_t>{3, 1, 2});
  EXPECT_FALSE(s.sorted_nondecreasing);
  EXPECT_EQ(s.run_count, 3u);
}

TEST(StatsTest, DeltaBitsForSortedData) {
  // Deltas: 10 (head), then 2, 2, 2 -> zigzagged small.
  ColumnStats s = ComputeStats(Column<uint32_t>{10, 12, 14, 16});
  EXPECT_TRUE(s.strictly_increasing);
  EXPECT_EQ(s.max_delta_zigzag_bits, 3);  // zigzag(2) = 4 -> 3 bits
  EXPECT_EQ(s.max_delta_zigzag_bits_with_head, 5);  // zigzag(10) = 20
}

TEST(StatsTest, RangeVsValueBits) {
  ColumnStats s = ComputeStats(Column<uint32_t>{1000, 1001, 1003});
  EXPECT_EQ(s.value_bits, 10);
  EXPECT_EQ(s.range_bits, 2);  // max - min = 3
}

TEST(StatsTest, DistinctCapped) {
  Column<uint32_t> col(ColumnStats::kDistinctCap + 100);
  for (uint64_t i = 0; i < col.size(); ++i) col[i] = static_cast<uint32_t>(i);
  ColumnStats s = ComputeStats(col);
  EXPECT_TRUE(s.distinct_capped);
  EXPECT_EQ(s.distinct, ColumnStats::kDistinctCap);
}

TEST(StatsTest, StepResidualWidthExactSegments) {
  // Two segments of 4: [10..13] spread 3 (2 bits), [100..108] spread 8 (4 bits).
  Column<uint32_t> col{10, 11, 12, 13, 100, 104, 101, 108};
  EXPECT_EQ(StepResidualWidth(col, 4), 4);
  EXPECT_EQ(StepResidualWidth(col, 8), 7);  // global spread 98 -> 7 bits
}

TEST(StatsTest, StepResidualWidthRaggedTail) {
  Column<uint32_t> col{0, 0, 0, 7};  // segments of 3: {0,0,0} and {7}
  EXPECT_EQ(StepResidualWidth(col, 3), 0);
}

TEST(StatsTest, StepResidualWidthEmptyOrZeroEll) {
  EXPECT_EQ(StepResidualWidth(Column<uint32_t>{}, 4), 0);
  EXPECT_EQ(StepResidualWidth(Column<uint32_t>{1, 2}, 0), 0);
}

TEST(StatsTest, WidthCoveringFraction) {
  // 90 small values (4 bits), 10 large (20 bits).
  Column<uint32_t> col;
  for (int i = 0; i < 90; ++i) col.push_back(9);        // 4 bits
  for (int i = 0; i < 10; ++i) col.push_back(1 << 19);  // 20 bits
  EXPECT_EQ(WidthCoveringFraction(col, 0.0), 20);
  EXPECT_EQ(WidthCoveringFraction(col, 0.10), 4);
  EXPECT_EQ(WidthCoveringFraction(col, 0.05), 20);
}

TEST(StatsTest, WorksForAllUnsignedWidths) {
  ColumnStats s8 = ComputeStats(Column<uint8_t>{255, 0});
  EXPECT_EQ(s8.value_bits, 8);
  ColumnStats s64 = ComputeStats(Column<uint64_t>{~uint64_t{0}});
  EXPECT_EQ(s64.value_bits, 64);
}

}  // namespace
}  // namespace recomp
