// Tests for RPE and its catalog composition RLE = RPE{positions: DELTA} —
// the paper's §II-A decomposition, including the byte-identity of RLE's
// lengths column with the DELTA form of RPE's positions column.

#include <gtest/gtest.h>

#include "ops/run_boundaries.h"
#include "schemes/scheme.h"
#include "test_util.h"

namespace recomp {
namespace {

using testutil::ExpectRoundTrip;
using testutil::RunsColumn;

TEST(RpeSchemeTest, PartsMatchRuns) {
  Column<uint32_t> col{7, 7, 3, 3, 3, 9};
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  EXPECT_EQ(compressed->root().parts.at("values").column->As<uint32_t>(),
            (Column<uint32_t>{7, 3, 9}));
  EXPECT_EQ(compressed->root().parts.at("positions").column->As<uint32_t>(),
            (Column<uint32_t>{2, 5, 6}));
}

TEST(RpeSchemeTest, RoundTrip) {
  ExpectRoundTrip(AnyColumn(RunsColumn(10000, 0.02, 21)), Rpe());
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}), Rpe());
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{5}), Rpe());
  ExpectRoundTrip(AnyColumn(Column<uint32_t>(5000, 1)), Rpe());
}

TEST(RpeSchemeTest, WorksForSignedValues) {
  Column<int32_t> col{-1, -1, 5, 5, 5, -7};
  ExpectRoundTrip(AnyColumn(col), Rpe());
}

TEST(RpeSchemeTest, CorruptPositionsDetected) {
  Column<uint32_t> col{1, 1, 2};
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  // Make positions non-increasing.
  auto& positions =
      compressed->root().parts.at("positions").column->As<uint32_t>();
  positions[0] = 3;
  auto back = Decompress(*compressed);
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(RpeSchemeTest, LastPositionMustBeN) {
  Column<uint32_t> col{1, 1, 2};
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  compressed->root().n = 99;
  EXPECT_EQ(Decompress(*compressed).status().code(), StatusCode::kCorruption);
}

TEST(RleCompositionTest, LengthsAreTheDeltaForm) {
  // Paper §II-A: RLE ≡ (ID values, DELTA positions) ∘ RPE. Compressing the
  // positions part with DELTA must yield byte-exactly the classic lengths
  // column.
  Column<uint32_t> col = RunsColumn(20000, 0.03, 22);
  SchemeDescriptor rle = Rpe().With("positions", Delta());
  auto compressed = Compress(AnyColumn(col), rle);
  ASSERT_OK(compressed.status());

  auto runs = ops::FindRuns(col);
  ASSERT_OK(runs.status());

  const CompressedPart& positions_part =
      compressed->root().parts.at("positions");
  ASSERT_FALSE(positions_part.is_terminal());
  const AnyColumn& deltas =
      *positions_part.sub->parts.at("deltas").column;
  EXPECT_EQ(deltas.As<uint32_t>(), runs->lengths);
}

TEST(RleCompositionTest, RoundTrip) {
  SchemeDescriptor rle = Rpe().With("positions", Delta());
  ExpectRoundTrip(AnyColumn(RunsColumn(10000, 0.05, 23)), rle);
  ExpectRoundTrip(AnyColumn(Column<uint32_t>{}), rle);
}

TEST(RleCompositionTest, FullStackWithPackedLeaves) {
  // RLE with NS-packed lengths and DELTA+NS values - the paper's intro
  // composite for the shipped-orders date column.
  SchemeDescriptor desc =
      Rpe()
          .With("positions", Delta().With("deltas", Ns()))
          .With("values",
                Delta().With("deltas", ZigZag().With("recoded", Ns())));
  Column<uint32_t> col = RunsColumn(50000, 0.01, 24);
  CompressedColumn c = ExpectRoundTrip(AnyColumn(col), desc);
  // ~500 runs of ~100: tiny lengths, tiny value deltas.
  EXPECT_GT(c.Ratio(), 50.0);
}

TEST(RpeSchemeTest, RatioReflectsRunCount) {
  Column<uint32_t> col = RunsColumn(10000, 0.01, 25);  // ~100 runs
  auto compressed = Compress(AnyColumn(col), Rpe());
  ASSERT_OK(compressed.status());
  // Payload is ~2 * runs * 4 bytes vs 40000 bytes uncompressed.
  EXPECT_GT(compressed->Ratio(), 20.0);
}

}  // namespace
}  // namespace recomp
