// Scheme explorer: run the analyzer over several workloads and print the
// ranked composition space — estimated vs measured footprints and the
// decompression-cost estimate for each candidate.
//
// Optionally pass a descriptor string to compress each workload with it:
//   $ ./build/examples/scheme_explorer "RPE{positions:DELTA{deltas:NS}}"

#include <cstdio>

#include "core/analyzer.h"
#include "core/pipeline.h"
#include "gen/generators.h"

namespace {

struct Workload {
  const char* name;
  recomp::Column<uint32_t> column;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace recomp;

  const Workload workloads[] = {
      {"shipped-order dates", gen::ShippedOrderDates(200000, 150.0, 1)},
      {"zipf categories", gen::ZipfValues(200000, 1000, 1.1, 2)},
      {"sensor step levels", gen::StepLevels(200000, 512, 24, 6, 3)},
      {"linear trend", gen::LinearTrend(200000, 3.25, 32, 4)},
      {"narrow uniform", gen::Uniform(200000, 4096, 5)},
      {"outlier mixture", gen::OutlierMix(200000, 8, 28, 0.01, 6)},
  };

  // Explicit descriptor mode.
  if (argc > 1) {
    auto desc = SchemeDescriptor::Parse(argv[1]);
    if (!desc.ok()) {
      std::fprintf(stderr, "bad descriptor: %s\n",
                   desc.status().ToString().c_str());
      return 1;
    }
    for (const Workload& workload : workloads) {
      auto compressed = Compress(AnyColumn(workload.column), *desc);
      if (!compressed.ok()) {
        std::printf("%-22s %s\n", workload.name,
                    compressed.status().ToString().c_str());
        continue;
      }
      std::printf("%-22s %10llu bytes  %6.1fx  %s\n", workload.name,
                  static_cast<unsigned long long>(compressed->PayloadBytes()),
                  compressed->Ratio(),
                  compressed->Descriptor().ToString().c_str());
    }
    return 0;
  }

  for (const Workload& workload : workloads) {
    std::printf("== %s (%zu rows) ==\n", workload.name,
                workload.column.size());
    auto outcomes = TrialCompressCandidates(AnyColumn(workload.column));
    if (!outcomes.ok()) {
      std::printf("  analyzer: %s\n", outcomes.status().ToString().c_str());
      continue;
    }
    std::printf("  %-18s %12s %12s %9s   %s\n", "candidate", "estimated",
                "measured", "cost/val", "descriptor");
    int shown = 0;
    for (const TrialOutcome& outcome : *outcomes) {
      if (++shown > 6) break;  // Top six per workload.
      std::printf("  %-18s %12llu %12llu %9.2f   %s\n", outcome.name.c_str(),
                  static_cast<unsigned long long>(outcome.estimated_bytes),
                  static_cast<unsigned long long>(outcome.measured_bytes),
                  outcome.estimated_cost,
                  outcome.descriptor.ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
