// Quickstart: compress a column, inspect its pure-column structure, build
// and print the paper-style decompression plan, and round-trip the data.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "core/plan_builder.h"
#include "core/plan_executor.h"
#include "gen/generators.h"

int main() {
  using namespace recomp;

  // A sorted column with runs — the shape RLE-family schemes love.
  Column<uint32_t> column = gen::SortedRuns(/*n=*/100000,
                                            /*avg_run_length=*/40.0,
                                            /*max_step=*/3, /*seed=*/42);

  // Classic RLE is a *composition* in this library: RPE with the run
  // positions DELTA-compressed (paper, §II-A).
  const SchemeDescriptor rle = MakeRle();
  std::printf("descriptor: %s\n\n", rle.ToString().c_str());

  auto compressed = Compress(AnyColumn(column), rle);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compression failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }

  std::printf("compressed structure:\n%s\n", compressed->ToString().c_str());
  std::printf("uncompressed: %llu bytes, compressed: %llu bytes, ratio %.1fx\n\n",
              static_cast<unsigned long long>(compressed->UncompressedBytes()),
              static_cast<unsigned long long>(compressed->PayloadBytes()),
              compressed->Ratio());

  // Decompression is a plan of ordinary columnar operators — Algorithm 1 of
  // the paper, reconstructed from the descriptor.
  auto plan = BuildDecompressionPlan(*compressed);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("decompression plan (the paper's Algorithm 1):\n%s\n",
              plan->ToString().c_str());

  auto via_plan = ExecutePlan(*plan, *compressed);
  auto via_kernels = Decompress(*compressed);
  if (!via_plan.ok() || !via_kernels.ok()) {
    std::fprintf(stderr, "decompression failed\n");
    return 1;
  }
  const bool plan_ok = via_plan->As<uint32_t>() == column;
  const bool kernels_ok = via_kernels->As<uint32_t>() == column;
  std::printf("roundtrip via operator plan: %s\n", plan_ok ? "OK" : "FAIL");
  std::printf("roundtrip via fused kernels: %s\n", kernels_ok ? "OK" : "FAIL");
  return plan_ok && kernels_ok ? 0 : 1;
}
