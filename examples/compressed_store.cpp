// A miniature compressed column store, chunked edition: ingest a drifting
// column, let the analyzer pick a composition *per chunk*, serialize the
// chunked envelope (v2: chunk directory + zone maps) to a file, load it
// back, and serve point lookups and zone-map-pruned range queries without
// ever materializing the column — the library's pieces composed the way a
// DBMS buffer pool would use them.

#include <cstdio>
#include <fstream>

#include "core/analyzer.h"
#include "core/chunked.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "util/thread_pool.h"

int main() {
  using namespace recomp;

  // One pool for the whole store: per-chunk compression, scans, and batch
  // lookups all fan out over it; results are identical to sequential.
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  const ExecContext ctx{&pool, 1};
  std::printf("execution pool: %llu threads\n",
              static_cast<unsigned long long>(pool.num_threads()));

  // Ingest: a column that drifts — run-heavy, then noisy, then sorted — so
  // no single whole-column descriptor fits all of it.
  constexpr uint64_t kPart = 1u << 18;
  Column<uint32_t> column = gen::SortedRuns(kPart, 50.0, 2, 99);
  {
    Column<uint32_t> noise = gen::Uniform(kPart, 1u << 22, 100);
    column.insert(column.end(), noise.begin(), noise.end());
    for (uint64_t i = 0; i < kPart; ++i) {
      column.push_back((1u << 23) + static_cast<uint32_t>(2 * i));
    }
  }

  // Chunk-at-a-time compression with per-chunk scheme selection; the
  // analyzer search runs per chunk, in parallel.
  auto compressed = CompressChunkedAuto(AnyColumn(column), {64 * 1024}, {}, ctx);
  if (!compressed.ok()) return 1;
  std::printf("per-chunk analyzer choices (%.1fx overall):\n",
              compressed->Ratio());
  for (uint64_t i = 0; i < compressed->num_chunks(); ++i) {
    const CompressedChunk& chunk = compressed->chunk(i);
    std::printf("  chunk %2llu rows [%8llu, %8llu) zone [%8llu, %8llu]  %s\n",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(chunk.zone.row_begin),
                static_cast<unsigned long long>(chunk.zone.row_begin +
                                                chunk.zone.row_count),
                static_cast<unsigned long long>(chunk.zone.min),
                static_cast<unsigned long long>(chunk.zone.max),
                chunk.column.Descriptor().ToString().c_str());
  }

  // Persist as a v2 buffer (chunk directory + per-chunk payloads).
  auto buffer = Serialize(*compressed);
  if (!buffer.ok()) return 1;
  const char* path = "/tmp/recomp_column.bin";
  {
    std::ofstream file(path, std::ios::binary);
    file.write(reinterpret_cast<const char*>(buffer->data()),
               static_cast<std::streamsize>(buffer->size()));
  }
  std::printf("wrote %zu bytes to %s (payload %llu + directory/envelope)\n",
              buffer->size(), path,
              static_cast<unsigned long long>(compressed->PayloadBytes()));

  // Load.
  std::vector<uint8_t> loaded;
  {
    std::ifstream file(path, std::ios::binary);
    loaded.assign(std::istreambuf_iterator<char>(file),
                  std::istreambuf_iterator<char>());
  }
  auto restored = DeserializeChunked(loaded);
  if (!restored.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }

  // Point lookups straight off the loaded chunked form.
  for (uint64_t row : {uint64_t{0}, 2 * kPart + 12345, 3 * kPart - 1}) {
    auto point = exec::GetAt(*restored, row, ctx);
    if (!point.ok() || point->value != column[row]) {
      std::fprintf(stderr, "point lookup mismatch at %llu\n",
                   static_cast<unsigned long long>(row));
      return 1;
    }
    std::printf("row %8llu -> %10llu   (%s)\n",
                static_cast<unsigned long long>(row),
                static_cast<unsigned long long>(point->value),
                exec::StrategyName(point->strategy));
  }

  // A range query over the sorted tail: the zone maps prune the run-heavy
  // and noisy chunks before any per-chunk strategy runs, and the chunks
  // that do overlap execute concurrently on the pool.
  exec::RangePredicate predicate{1u << 23, (1u << 23) + (1u << 17)};
  auto selection = exec::SelectCompressed(*restored, predicate, ctx);
  if (!selection.ok()) return 1;
  std::printf(
      "range query matched %zu rows: %llu/%llu chunks zone-map-pruned, "
      "%llu emitted whole, %llu executed (decoded %llu values)\n",
      selection->positions.size(),
      static_cast<unsigned long long>(selection->stats.chunks_pruned),
      static_cast<unsigned long long>(selection->stats.chunks_total),
      static_cast<unsigned long long>(selection->stats.chunks_full),
      static_cast<unsigned long long>(selection->stats.chunks_executed),
      static_cast<unsigned long long>(selection->stats.values_decoded));
  if (selection->stats.chunks_pruned == 0) {
    std::fprintf(stderr, "expected zone maps to prune at least one chunk\n");
    return 1;
  }

  std::remove(path);
  std::printf("store roundtrip: OK\n");
  return 0;
}
