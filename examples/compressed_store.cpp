// A miniature compressed column store: analyze, compress, serialize to a
// file, load it back, and serve point lookups and range queries without
// ever materializing the column — the library's pieces composed the way a
// DBMS buffer pool would use them.

#include <cstdio>
#include <fstream>

#include "core/analyzer.h"
#include "core/pipeline.h"
#include "core/serialize.h"
#include "exec/point_access.h"
#include "exec/selection.h"
#include "gen/generators.h"

int main() {
  using namespace recomp;

  // Ingest: a sensor-style column; let the analyzer pick the composition.
  Column<uint32_t> column = gen::StepLevels(1u << 20, 1024, 24, 8, 99);
  auto descriptor = ChooseScheme(AnyColumn(column));
  if (!descriptor.ok()) return 1;
  auto compressed = Compress(AnyColumn(column), *descriptor);
  if (!compressed.ok()) return 1;
  std::printf("analyzer chose: %s (%.1fx)\n",
              compressed->Descriptor().ToString().c_str(),
              compressed->Ratio());

  // Persist.
  auto buffer = Serialize(*compressed);
  if (!buffer.ok()) return 1;
  const char* path = "/tmp/recomp_column.bin";
  {
    std::ofstream file(path, std::ios::binary);
    file.write(reinterpret_cast<const char*>(buffer->data()),
               static_cast<std::streamsize>(buffer->size()));
  }
  std::printf("wrote %zu bytes to %s (payload %llu + envelope)\n",
              buffer->size(), path,
              static_cast<unsigned long long>(compressed->PayloadBytes()));

  // Load.
  std::vector<uint8_t> loaded;
  {
    std::ifstream file(path, std::ios::binary);
    loaded.assign(std::istreambuf_iterator<char>(file),
                  std::istreambuf_iterator<char>());
  }
  auto restored = Deserialize(loaded);
  if (!restored.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }

  // Point lookups straight off the loaded compressed form.
  for (uint64_t row : {uint64_t{0}, uint64_t{123456}, uint64_t{(1u << 20) - 1}}) {
    auto point = exec::GetAt(*restored, row);
    if (!point.ok() || point->value != column[row]) {
      std::fprintf(stderr, "point lookup mismatch at %llu\n",
                   static_cast<unsigned long long>(row));
      return 1;
    }
    std::printf("row %8llu -> %10llu   (%s)\n",
                static_cast<unsigned long long>(row),
                static_cast<unsigned long long>(point->value),
                point->strategy.c_str());
  }

  // A range query served with segment pruning.
  exec::RangePredicate predicate{1u << 22, (1u << 22) + (1u << 19)};
  auto selection = exec::SelectCompressed(*restored, predicate);
  if (!selection.ok()) return 1;
  std::printf(
      "range query matched %zu rows via '%s' (decoded %llu of %u values)\n",
      selection->positions.size(), selection->stats.strategy.c_str(),
      static_cast<unsigned long long>(selection->stats.values_decoded),
      1u << 20);

  std::remove(path);
  std::printf("store roundtrip: OK\n");
  return 0;
}
