// The composable scan end-to-end: a live three-column table fed batch by
// batch while scans run against consistent snapshots — one ScanSpec filters
// on two columns (zone-map pruning intersected across both), late-
// materializes a third, and folds aggregates, all chunk-parallel on the
// shared pool. The old per-operator free functions still work (they are
// wrappers over one-filter/one-aggregate specs); this is the API that
// replaces gluing them together by hand.

#include <cstdio>

#include "exec/scan.h"
#include "gen/generators.h"
#include "store/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace recomp;
  using exec::AggregateOp;
  using exec::RangePredicate;
  using exec::ScanSpec;

  ThreadPool pool(ThreadPool::DefaultThreadCount());
  const ExecContext ctx{&pool, 1};

  // Orders: sorted ship dates (RLE-friendly, prunable), noisy amounts, and
  // small per-line quantities. Chunk sizes differ on purpose — the scan
  // refines misaligned chunk boundaries into ranges by itself.
  auto table = store::Table::Create(
      {
          {"date", TypeId::kUInt32, {64 * 1024}, "RLE"},
          {"amount", TypeId::kUInt32, {64 * 1024}, ""},
          {"qty", TypeId::kUInt32, {48 * 1024}, ""},
      },
      ctx);
  if (!table.ok()) return 1;

  constexpr uint64_t kBatch = 128 * 1024;
  constexpr int kBatches = 6;
  for (int b = 0; b < kBatches; ++b) {
    const Column<uint32_t> dates = gen::SortedRuns(kBatch, 90.0, 2, 500 + b);
    const Column<uint32_t> amounts = gen::Uniform(kBatch, 1u << 20, 600 + b);
    const Column<uint32_t> qtys = gen::Uniform(kBatch, 50, 700 + b);
    if (!table
             ->AppendBatch(
                 {AnyColumn(dates), AnyColumn(amounts), AnyColumn(qtys)})
             .ok()) {
      return 1;
    }
  }

  // Query the live table (no flush: the tails are stored-plain ID chunks
  // that the scan reads in place via the kPlainScan fast path).
  auto snap = table->Snapshot();
  if (!snap.ok()) return 1;

  // "Recent cheap orders": filter on date AND amount, fetch quantities,
  // fold revenue — one declarative spec, one pass.
  auto max_date = exec::Scan(
      *snap, ScanSpec().Aggregate("date", AggregateOp::kMax), ctx);
  if (!max_date.ok()) return 1;
  const uint64_t cutoff = max_date->aggregates[0].value() - 40;

  ScanSpec spec;
  spec.Filter("date", RangePredicate{cutoff, ~uint64_t{0}})
      .Filter("amount", RangePredicate{0, 1u << 16})
      .Project({"qty", "amount"})
      .Aggregate("amount", AggregateOp::kSum)
      .Aggregate("qty", AggregateOp::kSum)
      .Aggregate("qty", AggregateOp::kMax);
  auto result = exec::Scan(*snap, spec, ctx);
  if (!result.ok()) {
    std::printf("scan failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("scanned %llu rows -> %llu matches\n",
              static_cast<unsigned long long>(result->rows_scanned),
              static_cast<unsigned long long>(result->rows_matched));
  for (const exec::ScanFilterStats& f : result->filters) {
    std::printf(
        "  filter %-7s: %llu chunks, %llu pruned by zone maps, %llu "
        "served whole, %llu executed\n",
        f.column.c_str(),
        static_cast<unsigned long long>(f.stats.chunks_total),
        static_cast<unsigned long long>(f.stats.chunks_pruned),
        static_cast<unsigned long long>(f.stats.chunks_full),
        static_cast<unsigned long long>(f.stats.chunks_executed));
  }
  for (const exec::ScanProjection& p : result->projections) {
    std::printf("  gathered %-7s: %llu values from %llu chunks\n",
                p.column.c_str(),
                static_cast<unsigned long long>(p.values.size()),
                static_cast<unsigned long long>(p.gather.chunks_touched));
  }
  for (const exec::ScanAggregate& a : result->aggregates) {
    std::printf("  %s(%s) = %llu over %llu rows\n",
                exec::AggregateOpName(a.op), a.column.c_str(),
                static_cast<unsigned long long>(a.value()),
                static_cast<unsigned long long>(a.rows));
  }

  // The same query, limited: the first 5 matches only.
  auto top = exec::Scan(*snap, ScanSpec(spec).Limit(5), ctx);
  if (!top.ok()) return 1;
  std::printf("first %llu matches (of %llu):\n",
              static_cast<unsigned long long>(top->positions.size()),
              static_cast<unsigned long long>(top->rows_matched));
  const Column<uint32_t>& qty = top->projections[0].values.As<uint32_t>();
  const Column<uint32_t>& amount = top->projections[1].values.As<uint32_t>();
  for (size_t i = 0; i < top->positions.size(); ++i) {
    std::printf("  row %8u: qty=%2u amount=%u\n", top->positions[i], qty[i],
                amount[i]);
  }
  return 0;
}
