// Streaming ingest end-to-end: a table of appendable columns fed batch by
// batch while snapshot readers query it live — appends land in uncompressed
// tail chunks, background seal jobs (analyzer choice + compression) run on
// the shared pool, and every snapshot is a regular chunked column the exec
// operators scan with zone-map pruning. Finishes with a flush, serializes
// the sealed column (v2 wire format), and reloads it with parallel
// per-chunk deserialization.

#include <cstdio>

#include "core/serialize.h"
#include "exec/aggregate.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "store/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace recomp;

  ThreadPool pool(ThreadPool::DefaultThreadCount());
  const ExecContext ctx{&pool, 1};
  std::printf("execution pool: %llu threads\n",
              static_cast<unsigned long long>(pool.num_threads()));

  // A two-column table: order dates ride the classic RLE from the catalog;
  // amounts let the analyzer pick a composition per sealed chunk.
  auto table = store::Table::Create(
      {
          {"date", TypeId::kUInt32, {64 * 1024}, "RLE"},
          {"amount", TypeId::kUInt32, {64 * 1024}, ""},
      },
      ctx);
  if (!table.ok()) return 1;

  // Ingest in batches, querying a live snapshot between batches.
  constexpr uint64_t kBatch = 96 * 1024;
  constexpr int kBatches = 8;
  for (int b = 0; b < kBatches; ++b) {
    const Column<uint32_t> dates =
        gen::SortedRuns(kBatch, 80.0, 2, 200 + b);
    const Column<uint32_t> amounts =
        gen::Uniform(kBatch, 1u << 20, 300 + b);
    if (!table->AppendBatch({AnyColumn(dates), AnyColumn(amounts)}).ok()) {
      return 1;
    }

    auto snap = table->Snapshot();
    if (!snap.ok()) return 1;
    const store::ColumnSnapshot& amount_view =
        *snap->column("amount").ValueOrDie();
    auto sum = exec::SumCompressed(amount_view.chunked(), ctx);
    if (!sum.ok()) return 1;
    std::printf(
        "batch %d: %8llu rows live (%llu sealed + %llu unsealed chunks), "
        "sum(amount)=%llu\n",
        b, static_cast<unsigned long long>(snap->rows()),
        static_cast<unsigned long long>(amount_view.sealed_chunks()),
        static_cast<unsigned long long>(amount_view.unsealed_chunks()),
        static_cast<unsigned long long>(sum->value));
  }

  // Seal everything and serialize the amount column.
  if (!table->Flush().ok()) return 1;
  auto amount_column = table->column("amount");
  if (!amount_column.ok()) return 1;
  auto buffer = (*amount_column)->Serialize();
  if (!buffer.ok()) return 1;
  std::printf("flushed: %llu chunks sealed, serialized to %zu bytes\n",
              static_cast<unsigned long long>((*amount_column)->num_chunks()),
              buffer->size());

  // Reload with parallel per-chunk parsing and run a range query.
  auto restored = DeserializeChunked(*buffer, ctx);
  if (!restored.ok()) return 1;
  auto selection = exec::SelectCompressed(
      *restored, exec::RangePredicate{0, 1u << 10}, ctx);
  if (!selection.ok()) return 1;
  std::printf(
      "reloaded %llu rows; range query matched %zu rows "
      "(%llu/%llu chunks executed)\n",
      static_cast<unsigned long long>(restored->size()),
      selection->positions.size(),
      static_cast<unsigned long long>(selection->stats.chunks_executed),
      static_cast<unsigned long long>(selection->stats.chunks_total));

  std::printf("streaming ingest roundtrip: OK\n");
  return 0;
}
