// Serving queries: many clients, one shared-scan pass per window.
//
// A QueryService sits in front of a live table. Clients register, submit
// ScanSpecs, and get futures back; queries landing inside one batching
// window execute as a single chunk-parallel pass — each surviving chunk is
// fused-decoded once, every query's predicate evaluates against the shared
// decoded buffer, and selection vectors for repeated predicates are
// recycled outright. Identical specs go further still: within a window
// only the first executes (the rest deduplicate onto it), and across
// windows the result cache answers a repeated spec at the same data
// version without touching the pipeline at all. Admission control
// (per-client in-flight caps, a bounded queue, deadlines) keeps an
// overload from queueing unbounded work. Answers are bit-identical to
// running each spec solo.

#include <cstdio>
#include <vector>

#include "exec/scan.h"
#include "gen/generators.h"
#include "service/query_service.h"
#include "store/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace recomp;
  using exec::AggregateOp;
  using exec::ScanSpec;
  using service::QueryService;
  using service::ServiceOptions;

  ThreadPool pool(ThreadPool::DefaultThreadCount());
  const ExecContext ctx{&pool, 1};

  // Orders: uniform keys and amounts, sealed so every chunk is compressed.
  auto table = store::Table::Create({{"key", TypeId::kUInt32, {64 * 1024}, ""},
                                     {"amount", TypeId::kUInt32, {64 * 1024}, ""}},
                                    ctx);
  if (!table.ok()) return 1;
  constexpr uint64_t kRows = 512 * 1024;
  constexpr uint64_t kBound = 1u << 20;
  if (!table
           ->AppendBatch({AnyColumn(gen::Uniform(kRows, kBound, 21)),
                          AnyColumn(gen::Uniform(kRows, kBound, 22))})
           .ok()) {
    return 1;
  }
  if (!table->Seal().ok() || !table->Flush().ok()) return 1;

  // The service: a 500us admission window, per-client cap of 32 in-flight.
  ServiceOptions options;
  options.batch_window = std::chrono::microseconds(500);
  options.max_in_flight_per_client = 32;
  auto service = QueryService::Create(&*table, options, ctx);
  if (!service.ok()) return 1;
  QueryService& svc = **service;

  // Eight "dashboard" clients re-issuing four distinct predicates — the
  // repeated-predicate shape where selection-vector reuse shines.
  std::vector<uint64_t> clients;
  for (int c = 0; c < 8; ++c) clients.push_back(svc.RegisterClient());
  std::vector<QueryService::ResultFuture> futures;
  for (int q = 0; q < 32; ++q) {
    const uint64_t lo = kBound / 8 + (q % 4) * (kBound / 6);
    ScanSpec spec;
    spec.Filter("key", {lo, lo + kBound / 16})
        .Aggregate("amount", AggregateOp::kSum);
    auto future = svc.Submit(clients[q % clients.size()], spec);
    if (!future.ok()) {
      std::printf("refused: %s\n", future.status().ToString().c_str());
      continue;
    }
    futures.push_back(std::move(*future));
  }

  // Futures resolve once the window's shared pass completes.
  for (size_t q = 0; q < futures.size(); ++q) {
    auto result = futures[q].get();
    if (!result.ok()) {
      std::printf("query %zu failed: %s\n", q,
                  result.status().ToString().c_str());
      continue;
    }
    if (q % 8 == 0) {
      std::printf("query %2zu: %llu of %llu rows matched, sum=%llu\n", q,
                  static_cast<unsigned long long>(result->rows_matched),
                  static_cast<unsigned long long>(result->rows_scanned),
                  static_cast<unsigned long long>(
                      result->aggregates[0].value()));
    }
  }

  // The shared-scan win, straight from the service accounting: of the 32
  // submitted queries only the distinct specs executed (the rest were
  // deduplicated or served from the result cache), and those executions
  // shared their decodes.
  const service::ServiceStats stats = svc.stats();
  std::printf(
      "\n%llu executed + %llu deduplicated + %llu cache hits in %llu "
      "batches: %llu chunk evaluations over %llu decodes "
      "(sharing ratio %.1fx)\n",
      static_cast<unsigned long long>(stats.queries_executed),
      static_cast<unsigned long long>(stats.batch_dedup_hits),
      static_cast<unsigned long long>(stats.result_cache_hits),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.chunk_evaluations),
      static_cast<unsigned long long>(stats.chunks_decoded),
      stats.sharing_ratio());

  svc.Stop();
  return 0;
}
