// The paper's introductory example: a shipped-orders date column.
//
// "Data accrues over time, so the dates form a monotone-increasing sequence
// with long runs for the orders shipped every day. Applying an RLE scheme
// to the dates, then applying DELTA to the run values, achieves a much
// stronger compression ratio than any single scheme individually."
//
// This example measures exactly that, then shows the §II-A decomposition:
// peeling the DELTA off the positions turns the stored form into RPE
// without recompressing.

#include <cstdio>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "core/rewrite.h"
#include "gen/generators.h"

int main() {
  using namespace recomp;

  Column<uint32_t> dates =
      gen::ShippedOrderDates(/*n=*/1000000, /*orders_per_day=*/250.0,
                             /*seed=*/2018);
  const AnyColumn input(dates);

  struct Contender {
    const char* name;
    SchemeDescriptor descriptor;
  };
  const Contender contenders[] = {
      {"NS (bit packing)", Ns()},
      {"VBYTE", VByte()},
      {"DELTA+NS", MakeDeltaNs()},
      {"DICT+NS", MakeDictNs()},
      {"FOR", MakeFor()},
      {"RLE (RPE o DELTA)", MakeRleNs()},
      {"RLE o DELTA on values", MakeRleDelta()},
  };

  std::printf("shipped-orders dates: %zu rows, %zu KiB uncompressed\n\n",
              dates.size(), dates.size() * 4 / 1024);
  std::printf("%-24s %14s %10s   %s\n", "scheme", "bytes", "ratio",
              "descriptor");
  for (const Contender& contender : contenders) {
    auto compressed = Compress(input, contender.descriptor);
    if (!compressed.ok()) {
      std::printf("%-24s failed: %s\n", contender.name,
                  compressed.status().ToString().c_str());
      continue;
    }
    std::printf("%-24s %14llu %9.1fx   %s\n", contender.name,
                static_cast<unsigned long long>(compressed->PayloadBytes()),
                compressed->Ratio(),
                compressed->Descriptor().ToString().c_str());
  }

  // Decompose: RLE-compressed data is RPE-compressed data with one
  // PrefixSum already applied (§II-A) — no recompression required.
  auto rle = Compress(input, MakeRle());
  if (!rle.ok()) return 1;
  auto rpe = PeelPart(*rle, "positions");
  if (!rpe.ok()) return 1;
  std::printf(
      "\npartial decompression (peel positions): %s  ->  %s\n"
      "  bytes %llu -> %llu: the ratio paid for dropping one PrefixSum\n",
      rle->Descriptor().ToString().c_str(),
      rpe->Descriptor().ToString().c_str(),
      static_cast<unsigned long long>(rle->PayloadBytes()),
      static_cast<unsigned long long>(rpe->PayloadBytes()));

  auto back = Decompress(*rpe);
  if (!back.ok() || !(back->As<uint32_t>() == dates)) {
    std::fprintf(stderr, "roundtrip failed\n");
    return 1;
  }
  std::printf("\nroundtrip after decomposition: OK\n");
  return 0;
}
