// Background recompression end-to-end: a table ingests under a deliberately
// poor pinned scheme (plain NS bit-packing on run-heavy dates), background
// maintenance revisits the sealed chunks off the scan path and swaps in the
// fresh analyzer's choice, and readers never notice — snapshots taken before
// a swap keep their chunks, snapshots taken after see the smaller ones. The
// report shows what moved: chunks reswapped, bytes saved, schemes
// before -> after.

#include <cstdio>

#include "core/chunked.h"
#include "exec/aggregate.h"
#include "gen/generators.h"
#include "store/recompress.h"
#include "store/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace recomp;

  ThreadPool pool(ThreadPool::DefaultThreadCount());
  const ExecContext ctx{&pool, 1};

  // "date" pins plain NS — a first choice worth correcting on run-heavy
  // data; "amount" lets the analyzer choose per sealed chunk.
  auto table = store::Table::Create(
      {
          {"date", TypeId::kUInt32, {64 * 1024}, "NS"},
          {"amount", TypeId::kUInt32, {64 * 1024}, ""},
      },
      ctx);
  if (!table.ok()) return 1;

  // Background maintenance from the first row: low-priority jobs on the
  // same pool, ticking every 5ms while ingest runs.
  store::RecompressionPolicy policy;
  policy.recompress_pinned = true;  // Migrate "date" off its pin.
  policy.min_gain = 1.05;           // Swap only for a >=5% smaller chunk.
  if (!table->StartMaintenance(policy, std::chrono::milliseconds(5)).ok()) {
    return 1;
  }

  constexpr uint64_t kBatch = 96 * 1024;
  for (int b = 0; b < 8; ++b) {
    const Column<uint32_t> dates = gen::SortedRuns(kBatch, 80.0, 2, 400 + b);
    const Column<uint32_t> amounts = gen::Uniform(kBatch, 1u << 20, 500 + b);
    if (!table->AppendBatch({AnyColumn(dates), AnyColumn(amounts)}).ok()) {
      return 1;
    }
    // Live queries run against whatever mix of old and new envelopes the
    // maintenance thread has produced so far; results never change.
    auto snap = table->Snapshot();
    if (!snap.ok()) return 1;
    auto sum = exec::SumCompressed(
        snap->column("amount").ValueOrDie()->chunked(), ctx);
    if (!sum.ok()) return 1;
    std::printf("batch %d: %llu rows live, sum(amount)=%llu\n", b,
                static_cast<unsigned long long>(snap->rows()),
                static_cast<unsigned long long>(sum->value));
  }

  if (!table->Flush().ok()) return 1;
  // Drain whatever the background cadence has not reached yet, then stop.
  auto final_pass = table->RecompressAll(policy);
  if (!final_pass.ok()) return 1;
  table->StopMaintenance();

  std::printf("\nbackground ticks:\n%s",
              table->maintenance_report().ToString().c_str());
  std::printf("\nfinal drain:\n%s", final_pass->ToString().c_str());

  auto snap = table->Snapshot();
  if (!snap.ok()) return 1;
  const ChunkedCompressedColumn& dates =
      snap->column("date").ValueOrDie()->chunked();
  std::printf("\n'date' after maintenance: %.1fx compressed\n%s",
              dates.Ratio(), dates.ToString().c_str());
  return 0;
}
