// Observability end-to-end: run a mixed ingest / scan / recompress workload,
// profile one query with obs::ProfileScope + obs::Span, and dump the
// process-wide metric registry — the counters the analyzer, the dispatch
// layer, the thread pool, and the recompressor move while they work.
//
// The same registry backs Table::MetricsSnapshot()/DebugString() and the
// recomp_statsz tool; this example shows the API surface a library user
// would wire into their own monitoring.

#include <cstdio>

#include "exec/scan.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace recomp;

  ThreadPool pool(ThreadPool::DefaultThreadCount());
  const ExecContext ctx{&pool, 1};

  // Two columns with different shapes: sorted-ish dates (run/delta
  // territory) and noisy amounts (null-suppression territory), so the
  // analyzer counters show real choices.
  auto table = store::Table::Create(
      {
          {"date", TypeId::kUInt32, {64 * 1024}, ""},
          {"amount", TypeId::kUInt32, {64 * 1024}, ""},
      },
      ctx);
  if (!table.ok()) return 1;

  for (int b = 0; b < 4; ++b) {
    const Column<uint32_t> dates = gen::SortedRuns(96 * 1024, 80.0, 2, 7 + b);
    const Column<uint32_t> amounts = gen::Uniform(96 * 1024, 1u << 20, 9 + b);
    if (!table->AppendBatch({AnyColumn(dates), AnyColumn(amounts)}).ok()) {
      return 1;
    }
  }
  if (!table->Flush().ok()) return 1;

  // Profile one query: install a ScanProfile on this thread and every span
  // the scan opens (filter, materialize) rolls up into it, alongside the
  // row/chunk counters the scan reports at exit.
  obs::ScanProfile profile;
  {
    const obs::ProfileScope scope(&profile);
    const obs::Span span("example.query");
    auto snap = table->Snapshot();
    if (!snap.ok()) return 1;
    exec::ScanSpec spec;
    spec.Filter("date", {0, 2000})
        .Aggregate("amount", exec::AggregateOp::kSum);
    auto result = exec::Scan(*snap, spec, ctx);
    if (!result.ok()) return 1;
    std::printf("query: %llu of %llu rows matched, sum(amount)=%llu\n",
                static_cast<unsigned long long>(result->rows_matched),
                static_cast<unsigned long long>(result->rows_scanned),
                static_cast<unsigned long long>(result->aggregates[0].value()));
    std::printf("  %s\n", result->filters[0].stats.ToString().c_str());
  }
  std::printf("\n%s\n", profile.ToString().c_str());

  // One maintenance pass so the recompressor's counters move too.
  store::RecompressionPolicy policy;
  policy.revisit_sealed = true;
  policy.min_age_chunks = 0;
  if (!table->RecompressAll(policy).ok()) return 1;

  // The registry, three ways: a raw snapshot for programmatic access, the
  // table's debug dump for humans, and JSON for scrapers.
  const obs::MetricsSnapshot snapshot = store::Table::MetricsSnapshot();
  std::printf("registry: %zu counters, %zu gauges, %zu histograms\n",
              snapshot.counters.size(), snapshot.gauges.size(),
              snapshot.histograms.size());
  std::printf(
      "  analyzer.choices=%llu  scan.queries=%llu  store.seal.completed=%llu\n",
      static_cast<unsigned long long>(snapshot.counter("analyzer.choices")),
      static_cast<unsigned long long>(snapshot.counter("scan.queries")),
      static_cast<unsigned long long>(
          snapshot.counter("store.seal.completed")));

  std::printf("\n%s", table->DebugString().c_str());
  return 0;
}
