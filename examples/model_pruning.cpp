// Query processing on the model: selections via segment pruning and
// approximate sums with gradual refinement (paper §II-B: the rough
// correspondence of column data to a simple model "can be used to speed up
// selections (e.g. range queries) ... or in the context of approximate or
// gradual-refinement query processing").

#include <cstdio>

#include "core/catalog.h"
#include "core/pipeline.h"
#include "exec/approx.h"
#include "exec/selection.h"
#include "gen/generators.h"
#include "ops/reduce.h"

int main() {
  using namespace recomp;

  // Sensor-style data: per-segment operating levels with bounded noise.
  Column<uint32_t> column =
      gen::StepLevels(/*n=*/1u << 20, /*segment_length=*/1024,
                      /*level_bits=*/24, /*noise_bits=*/8, /*seed=*/7);
  auto compressed = Compress(AnyColumn(column), MakeFor(1024));
  if (!compressed.ok()) return 1;
  std::printf("column: %zu rows compressed %.1fx as %s\n\n", column.size(),
              compressed->Ratio(),
              compressed->Descriptor().ToString().c_str());

  // A selective range query: the refs column prunes almost every segment.
  exec::RangePredicate predicate{1u << 22, (1u << 22) + (1u << 18)};
  auto selection = exec::SelectCompressed(*compressed, predicate);
  if (!selection.ok()) return 1;
  std::printf("SELECT ... WHERE %u <= v <= %u\n",
              static_cast<unsigned>(predicate.lo),
              static_cast<unsigned>(predicate.hi));
  std::printf("  strategy:          %s\n", exec::StrategyName(selection->stats.strategy));
  std::printf("  segments skipped:  %llu / %llu\n",
              static_cast<unsigned long long>(selection->stats.segments_skipped),
              static_cast<unsigned long long>(selection->stats.segments_total));
  std::printf("  residuals decoded: %llu of %zu values (%.2f%%)\n",
              static_cast<unsigned long long>(selection->stats.values_decoded),
              column.size(),
              100.0 * static_cast<double>(selection->stats.values_decoded) /
                  static_cast<double>(column.size()));
  std::printf("  matches:           %zu rows\n\n",
              selection->positions.size());

  // Approximate SUM from the model alone, then refine to exact.
  const uint64_t exact = ops::Sum(column);
  auto approx = exec::ApproximateSum(*compressed);
  if (!approx.ok()) return 1;
  std::printf("SUM(v): exact = %llu\n", static_cast<unsigned long long>(exact));
  std::printf("  %-18s %20s %20s %14s\n", "refined segments", "lower bound",
              "upper bound", "rel. error");
  const uint64_t total = approx->total_segments;
  for (uint64_t k : {uint64_t{0}, total / 8, total / 2, total}) {
    auto refined = exec::RefineSum(*compressed, k);
    if (!refined.ok()) return 1;
    std::printf("  %6llu / %-8llu  %20llu %20llu %13.4f%%\n",
                static_cast<unsigned long long>(refined->refined_segments),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(refined->lower),
                static_cast<unsigned long long>(refined->upper),
                100.0 * static_cast<double>(refined->Width()) /
                    static_cast<double>(exact));
    if (refined->lower > exact || refined->upper < exact) {
      std::fprintf(stderr, "bound violation!\n");
      return 1;
    }
  }
  std::printf("\nbounds always contained the exact answer: OK\n");
  return 0;
}
